"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a whole experiment sweep — a base
:class:`~repro.api.plan.SvdPlan` plus parameter *axes* whose cartesian
product enumerates every candidate — together with the robustness policy
the runner executes it under (attempts, timeout, backoff, fan-out width).
Specs are plain data: build one in Python, or load it from a JSON / TOML
file so a campaign is one shell command::

    {
      "name": "tree-policy-study",
      "base": {"m": 1024, "n": 768, "tile_size": 128, "n_cores": 4},
      "axes": {"tree": ["flatts", "greedy"], "policy": ["list", "fifo"]},
      "backend": "simulate",
      "max_attempts": 3,
      "timeout_seconds": 120
    }

Candidate identity is the backbone of resumability: every expanded plan
gets a deterministic :func:`candidate_id` — a hash of its *resolved* key
(tile size, variant, grid and tree pinned down by the existing resolver)
— so re-expanding the same spec in a later process maps onto the same
result-store rows, and two spellings of the same resolved plan collapse
to one candidate instead of running twice.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.execute import BACKENDS
from repro.api.plan import SvdPlan
from repro.api.resolver import resolve

PathLike = Union[str, Path]

#: Plan fields a spec may set in ``base`` or sweep in ``axes``.
PLAN_FIELDS = tuple(
    f.name for f in dataclass_fields(SvdPlan) if f.name not in ("matrix", "config")
)


@dataclass(frozen=True)
class Candidate:
    """One expanded campaign member: a stable id plus its plan."""

    candidate_id: str
    index: int
    plan: SvdPlan


def candidate_id(plan: SvdPlan, backend: str = "simulate") -> str:
    """Deterministic, stable id of one (plan, backend) candidate.

    The id hashes the *resolved* plan key — tile size, variant, tree and
    process grid after :func:`repro.api.resolver.resolve` — so defaults
    and their explicit spellings (``tile_size=None`` vs the resolver's
    default ``nb``, ``variant="auto"`` vs the Chan winner) yield the same
    id, and resuming a campaign from a re-expanded spec lands on the same
    store rows.
    """
    resolved = resolve(plan)
    key = plan.describe()
    key.update(
        backend=backend,
        tile_size=resolved.tile_size,
        variant=resolved.variant,
        p=resolved.p,
        q=resolved.q,
        grid=f"{resolved.grid.rows}x{resolved.grid.cols}",
    )
    payload = json.dumps(key, sort_keys=True, default=str)
    return hashlib.sha1(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative, fault-tolerantly-runnable experiment sweep.

    Parameters
    ----------
    name:
        Campaign identifier (names the default store file).
    base:
        Plan fields shared by every candidate (``m``/``n`` required).
    axes:
        Field -> list-of-values; candidates are the cartesian product,
        last axis varying fastest (the :meth:`SvdPlan.sweep` order).
    backend:
        Execution backend for every candidate (default ``"simulate"``).
    max_attempts:
        Bounded retries: a candidate that fails (exception, worker crash
        or timeout) this many times is *quarantined* — recorded with its
        error while the campaign continues.
    timeout_seconds:
        Per-candidate wall-clock limit (``None`` = unlimited).  A task
        past its deadline has its worker killed and counts one attempt.
    backoff_seconds:
        Base of the exponential retry backoff (doubling per attempt,
        deterministic jitter seeded per candidate; see
        :mod:`repro.utils.retry`).
    workers:
        Process fan-out width (``None`` defers to the runner default).
    chunk_size:
        Candidates per worker task.  Chunks are built per compiled
        Program, so ``> 1`` routes same-DAG simulate candidates through
        one :func:`repro.runtime.batch.simulate_resolved_batch` pass
        (bit-identical rows, shared setup); retries and timeouts then
        apply chunk-wise.
    """

    name: str
    base: Mapping[str, object] = field(default_factory=dict)
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)
    backend: str = "simulate"
    max_attempts: int = 3
    timeout_seconds: Optional[float] = None
    backoff_seconds: float = 0.25
    workers: Optional[int] = None
    chunk_size: int = 1

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ValueError("campaign name must be a non-empty string")
        object.__setattr__(self, "name", str(self.name).strip())
        object.__setattr__(self, "backend", str(self.backend).strip().lower())
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        object.__setattr__(self, "base", dict(self.base))
        object.__setattr__(
            self, "axes", {str(k): list(v) for k, v in dict(self.axes).items()}
        )
        for source, mapping in (("base", self.base), ("axes", self.axes)):
            unknown = set(mapping) - set(PLAN_FIELDS)
            if unknown:
                raise ValueError(
                    f"unknown plan field(s) in {source}: {sorted(unknown)}; "
                    f"known fields: {sorted(PLAN_FIELDS)}"
                )
        overlap = set(self.base) & set(self.axes)
        if overlap:
            raise ValueError(
                f"field(s) in both base and axes: {sorted(overlap)}"
            )
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be > 0, got {self.timeout_seconds}"
            )
        if self.backoff_seconds < 0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")

    # ------------------------------------------------------------------ #
    # Construction / serialization
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CampaignSpec":
        """Build a spec from a plain mapping (JSON/TOML-shaped)."""
        payload = dict(payload)
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown campaign spec key(s): {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )
        return cls(**payload)  # type: ignore[arg-type]

    @classmethod
    def from_file(cls, path: PathLike) -> "CampaignSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix.lower() == ".toml":
            try:
                import tomllib
            except ImportError:  # Python < 3.11
                raise ValueError(
                    f"cannot load {path}: TOML specs need Python >= 3.11 "
                    "(tomllib); use a JSON spec instead"
                ) from None
            payload = tomllib.loads(text)
        else:
            payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError(f"{path} does not contain a campaign spec object")
        return cls.from_dict(payload)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "base": dict(self.base),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "backend": self.backend,
            "max_attempts": self.max_attempts,
            "timeout_seconds": self.timeout_seconds,
            "backoff_seconds": self.backoff_seconds,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
        }

    def fingerprint(self) -> str:
        """Stable hash of the spec's *sweep identity* (name, base, axes,
        backend) — the runner refuses to resume a store written by a
        different sweep.  Robustness knobs (attempts, timeout, workers)
        are deliberately excluded: re-running with more retries or a
        longer timeout is still the same campaign.
        """
        payload = json.dumps(
            {
                "name": self.name,
                "base": self.base,
                "axes": self.axes,
                "backend": self.backend,
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha1(payload.encode()).hexdigest()[:16]

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def n_combinations(self) -> int:
        """Size of the raw parameter product (before id-level dedup)."""
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def expand(self) -> List[Candidate]:
        """Enumerate the parameter product as validated candidates.

        Every combination is built through :class:`SvdPlan` (field
        validation) and :func:`candidate_id` (resolver validation), so a
        malformed spec fails here — before anything runs.  Combinations
        that resolve to the same plan collapse onto one candidate
        (first-seen wins), keeping candidate ids unique.
        """
        base_plan = SvdPlan(**self.base)
        names = list(self.axes)
        combos = itertools.product(*(self.axes[name] for name in names))
        seen: Dict[str, int] = {}
        out: List[Candidate] = []
        for combo in combos:
            plan = base_plan.with_(**dict(zip(names, combo))) if names else base_plan
            cid = candidate_id(plan, self.backend)
            if cid in seen:
                continue
            seen[cid] = len(out)
            out.append(Candidate(candidate_id=cid, index=len(out), plan=plan))
        return out


def _chunk_key(plan: SvdPlan) -> Tuple:
    """Grouping key for batched execution: candidates with equal keys
    share one compiled :class:`~repro.ir.program.Program` (the
    :func:`repro.ir.compiler.program_key` axes) and may be simulated in
    one :func:`~repro.runtime.batch.simulate_resolved_batch` pass."""
    from repro.ir.compiler import tree_fingerprint

    resolved = resolve(plan)
    return (
        resolved.stage,
        resolved.variant,
        resolved.p,
        resolved.q,
        tree_fingerprint(resolved.tree),
        plan.n_cores,
        resolved.grid.rows,
    )


def build_chunks(
    candidates: Sequence[Candidate], backend: str, chunk_size: int
) -> List[List[Candidate]]:
    """Partition candidates into worker tasks of at most ``chunk_size``.

    With ``chunk_size == 1`` (the robustness default) every candidate is
    its own task.  Larger chunks group *simulate* candidates by compiled
    Program so each worker task is one batched engine pass; other
    backends chunk in plain expansion order.
    """
    if chunk_size <= 1:
        return [[c] for c in candidates]
    groups: Dict[object, List[Candidate]] = {}
    for cand in candidates:
        key: object = _chunk_key(cand.plan) if backend == "simulate" else "order"
        groups.setdefault(key, []).append(cand)
    chunks: List[List[Candidate]] = []
    for members in groups.values():
        for i in range(0, len(members), chunk_size):
            chunks.append(members[i : i + chunk_size])
    # Deterministic dispatch order: by first member's expansion index.
    chunks.sort(key=lambda chunk: chunk[0].index)
    return chunks
