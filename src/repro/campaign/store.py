"""Crash-consistent campaign result store (sqlite, WAL mode).

One row per candidate, keyed by the deterministic
:func:`~repro.campaign.spec.candidate_id`, carrying the candidate's
lifecycle — ``pending -> running -> done`` with ``failed`` (will retry)
and ``quarantined`` (retries exhausted) on the side — plus the attempt
count, the flattened :class:`~repro.api.result.RunResult` row, the last
error and the wall time.

Why sqlite: transactions make every state change atomic — a process
killed mid-write leaves either the previous state or the new one, never
a torn row — and WAL mode keeps concurrent readers (``repro campaign
status`` against a live run) cheap.  The crash/resume semantics are:

* **exactly-once results** — :meth:`ResultStore.mark_done` is guarded by
  the primary key and a status predicate, so completing an
  already-``done`` candidate is a recorded no-op, never a duplicate row;
* **interrupted work is re-queued** — a candidate left ``running`` by a
  crashed or killed process is detected at (re)open time by
  :meth:`ResultStore.requeue_interrupted` and goes back to ``pending``;
* **skip-completed resume** — :meth:`ResultStore.register` reports which
  expanded candidates are already ``done`` so a resumed campaign runs
  exactly the remainder.

The store also refuses to mix campaigns: the spec's sweep fingerprint is
pinned in a ``meta`` table on first registration and checked afterwards.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.campaign.spec import Candidate

PathLike = Union[str, Path]

#: Candidate lifecycle states.
STATUSES = ("pending", "running", "done", "failed", "quarantined")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT
);
CREATE TABLE IF NOT EXISTS candidates (
    candidate_id TEXT PRIMARY KEY,
    idx          INTEGER NOT NULL,
    status       TEXT    NOT NULL DEFAULT 'pending',
    attempts     INTEGER NOT NULL DEFAULT 0,
    plan_json    TEXT,
    row_json     TEXT,
    error        TEXT,
    wall_seconds REAL,
    updated_at   REAL
);
CREATE INDEX IF NOT EXISTS candidates_status ON candidates (status);
"""


@dataclass(frozen=True)
class CandidateRecord:
    """One store row, decoded."""

    candidate_id: str
    index: int
    status: str
    attempts: int
    plan: Optional[Dict[str, object]]
    row: Optional[Dict[str, object]]
    error: Optional[str]
    wall_seconds: Optional[float]


@dataclass(frozen=True)
class RegisterReport:
    """What :meth:`ResultStore.register` found for one expansion."""

    new: int
    already_done: int
    requeued: int
    pending: int


class ResultStore:
    """The campaign's persistent candidate ledger (one sqlite file)."""

    def __init__(self, path: PathLike, *, readonly: bool = False) -> None:
        self.path = Path(path)
        self.readonly = readonly
        if readonly and not self.path.exists():
            raise FileNotFoundError(f"no campaign store at {self.path}")
        if not readonly:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # One writer (the runner's main process) + any number of readers;
        # every mutation below commits as one explicit transaction.
        # check_same_thread is off because a runner may be *driven* from a
        # non-main thread (tests, embedding apps); the connection is still
        # only ever used by one thread at a time.
        self._conn = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        if not readonly:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Meta
    # ------------------------------------------------------------------ #
    def get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else str(row["value"])

    def set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )
        self._conn.commit()

    # ------------------------------------------------------------------ #
    # Registration / resume
    # ------------------------------------------------------------------ #
    def register(
        self, candidates: Sequence[Candidate], fingerprint: Optional[str] = None
    ) -> RegisterReport:
        """Insert the expanded candidates, honouring previous progress.

        New ids become ``pending``; ids already ``done`` are counted as
        resume skips; interrupted ``running`` rows (a previous process
        died mid-candidate) are re-queued.  ``fingerprint`` pins the
        spec's sweep identity — registering against a store written by a
        different sweep raises instead of silently mixing results.
        """
        if fingerprint is not None:
            stored = self.get_meta("spec_fingerprint")
            if stored is None:
                self.set_meta("spec_fingerprint", fingerprint)
            elif stored != fingerprint:
                raise ValueError(
                    f"store {self.path} belongs to a different campaign "
                    f"(spec fingerprint {stored} != {fingerprint}); "
                    "use a fresh --store path"
                )
        requeued = self.requeue_interrupted()
        new = 0
        now = time.time()
        for cand in candidates:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO candidates "
                "(candidate_id, idx, status, plan_json, updated_at) "
                "VALUES (?, ?, 'pending', ?, ?)",
                (
                    cand.candidate_id,
                    cand.index,
                    json.dumps(cand.plan.describe(), sort_keys=True, default=str),
                    now,
                ),
            )
            new += cursor.rowcount
        self._conn.commit()
        counts = self.counts()
        return RegisterReport(
            new=new,
            already_done=counts.get("done", 0),
            requeued=requeued,
            pending=counts.get("pending", 0) + counts.get("failed", 0),
        )

    def requeue_interrupted(self) -> int:
        """Re-queue candidates a dead process left ``running``.

        The runner marks a candidate ``running`` before dispatch and
        terminal afterwards, both atomically; a row still ``running`` at
        open time can only mean its process died mid-flight.  Putting it
        back to ``pending`` (attempts untouched — the interrupted try was
        already charged or not by the crash handler) re-runs it exactly
        once; the primary key keeps the eventual result row unique.
        """
        cursor = self._conn.execute(
            "UPDATE candidates SET status = 'pending', updated_at = ? "
            "WHERE status = 'running'",
            (time.time(),),
        )
        self._conn.commit()
        return cursor.rowcount

    # ------------------------------------------------------------------ #
    # State transitions (the runner's write API)
    # ------------------------------------------------------------------ #
    def mark_running(self, candidate_ids: Iterable[str]) -> None:
        self._conn.executemany(
            "UPDATE candidates SET status = 'running', updated_at = ? "
            "WHERE candidate_id = ? AND status NOT IN ('done', 'quarantined')",
            [(time.time(), cid) for cid in candidate_ids],
        )
        self._conn.commit()

    def mark_done(
        self, candidate_id: str, row: Dict[str, object], wall_seconds: float
    ) -> bool:
        """Record a completed candidate; returns ``False`` on a duplicate.

        The ``status != 'done'`` predicate makes completion idempotent:
        a candidate re-executed after a crash-before-commit (or raced by
        a stale worker) updates nothing the second time, so exactly one
        result row ever exists per candidate id.
        """
        cursor = self._conn.execute(
            "UPDATE candidates SET status = 'done', row_json = ?, error = NULL, "
            "wall_seconds = ?, updated_at = ? "
            "WHERE candidate_id = ? AND status != 'done'",
            (
                json.dumps(row, sort_keys=True, default=str),
                wall_seconds,
                time.time(),
                candidate_id,
            ),
        )
        self._conn.commit()
        return cursor.rowcount > 0

    def charge_failure(
        self,
        candidate_id: str,
        error: str,
        *,
        max_attempts: int,
        wall_seconds: Optional[float] = None,
    ) -> Tuple[str, int]:
        """Count one failed attempt; quarantine when retries are exhausted.

        Returns ``(new_status, attempts)`` where ``new_status`` is
        ``"failed"`` (eligible for retry) or ``"quarantined"``.
        """
        row = self._conn.execute(
            "SELECT attempts, status FROM candidates WHERE candidate_id = ?",
            (candidate_id,),
        ).fetchone()
        if row is None:
            raise KeyError(f"unknown candidate {candidate_id}")
        if row["status"] == "done":
            # A stale duplicate execution failed after the candidate
            # already completed; the result stands, nothing to charge.
            return "done", int(row["attempts"])
        attempts = int(row["attempts"]) + 1
        status = "quarantined" if attempts >= max_attempts else "failed"
        self._conn.execute(
            "UPDATE candidates SET status = ?, attempts = ?, error = ?, "
            "wall_seconds = COALESCE(?, wall_seconds), updated_at = ? "
            "WHERE candidate_id = ?",
            (status, attempts, error, wall_seconds, time.time(), candidate_id),
        )
        self._conn.commit()
        return status, attempts

    def release(self, candidate_ids: Iterable[str]) -> None:
        """Put ``running`` candidates back to ``pending`` *without*
        charging an attempt — for in-flight work re-queued through no
        fault of its own (a sibling's timeout tore down the pool, or a
        graceful shutdown drained the queue)."""
        self._conn.executemany(
            "UPDATE candidates SET status = 'pending', updated_at = ? "
            "WHERE candidate_id = ? AND status = 'running'",
            [(time.time(), cid) for cid in candidate_ids],
        )
        self._conn.commit()

    def requeue_quarantined(self) -> int:
        """Give every quarantined candidate a fresh retry budget."""
        cursor = self._conn.execute(
            "UPDATE candidates SET status = 'pending', attempts = 0, "
            "updated_at = ? WHERE status = 'quarantined'",
            (time.time(),),
        )
        self._conn.commit()
        return cursor.rowcount

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def counts(self) -> Dict[str, int]:
        """Candidate count per status (absent statuses omitted)."""
        out: Dict[str, int] = {}
        for row in self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM candidates GROUP BY status"
        ):
            out[str(row["status"])] = int(row["n"])
        return out

    def status_of(self, candidate_id: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT status FROM candidates WHERE candidate_id = ?",
            (candidate_id,),
        ).fetchone()
        return None if row is None else str(row["status"])

    def __len__(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) AS n FROM candidates").fetchone()
        return int(row["n"])

    def records(
        self, status: Optional[str] = None
    ) -> List[CandidateRecord]:
        """All rows (optionally one status), in expansion order."""
        query = (
            "SELECT candidate_id, idx, status, attempts, plan_json, row_json, "
            "error, wall_seconds FROM candidates"
        )
        args: Tuple = ()
        if status is not None:
            query += " WHERE status = ?"
            args = (status,)
        query += " ORDER BY idx"
        out = []
        for row in self._conn.execute(query, args):
            out.append(
                CandidateRecord(
                    candidate_id=str(row["candidate_id"]),
                    index=int(row["idx"]),
                    status=str(row["status"]),
                    attempts=int(row["attempts"]),
                    plan=json.loads(row["plan_json"]) if row["plan_json"] else None,
                    row=json.loads(row["row_json"]) if row["row_json"] else None,
                    error=row["error"],
                    wall_seconds=row["wall_seconds"],
                )
            )
        return out

    def result_rows(self) -> List[Dict[str, object]]:
        """The ``done`` candidates' flattened result rows, in order."""
        return [rec.row for rec in self.records("done") if rec.row is not None]
