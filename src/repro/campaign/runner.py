"""Fault-tolerant campaign execution over a process pool.

:class:`CampaignRunner` drives the candidates of one
:class:`~repro.campaign.spec.CampaignSpec` through a
``concurrent.futures`` process pool to completion, surviving everything
the satellites throw at it:

* **bounded retries with backoff** — a failing candidate is retried up to
  ``max_attempts`` times, delayed by exponential backoff with
  deterministic per-candidate jitter (:mod:`repro.utils.retry`);
* **per-task timeouts** — a task past its deadline has the (possibly
  hung) workers killed, costs the culprit one attempt, and re-queues the
  innocent in-flight tasks uncharged;
* **worker-crash recovery** — a dead worker (kill -9, OOM, injected
  ``os._exit``) breaks the whole pool, so the crash cannot be attributed
  to one of the in-flight tasks.  The pool is respawned and the in-flight
  work re-enqueued *uncharged*; a candidate caught in repeated breaks is
  then dispatched in *isolation* (alone in the pool), where the next
  break is attributable and charges it — innocents never lose their
  retry budget to a neighbour's crash, while a candidate that itself
  crashes deterministically still marches to quarantine;
* **graceful degradation** — a candidate that exhausts its attempts is
  *quarantined* with its last error while the campaign continues;
* **resumable interruption** — SIGINT/SIGTERM stops dispatch, drains
  in-flight work into the store and returns with ``interrupted=True``;
  a second signal tears the pool down immediately.  Either way the
  crash-consistent :class:`~repro.campaign.store.ResultStore` holds
  exactly the finished work, and a later ``run()`` (or ``repro campaign
  resume``) executes exactly the remainder.

Progress counters (``campaign.retries`` / ``timeouts`` / ``respawns`` /
``quarantined`` / ``resumed_skips`` / ``done``) report into the
process-wide :data:`repro.obs.metrics.REGISTRY` and are persisted on the
store's ``last_run`` meta record.
"""

from __future__ import annotations

import heapq
import json
import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future
from concurrent.futures import ProcessPoolExecutor, wait as futures_wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.faults import CampaignFaults, InjectedFault, active_faults, maybe_inject
from repro.campaign.spec import Candidate, CampaignSpec, build_chunks
from repro.campaign.store import ResultStore
from repro.obs.metrics import REGISTRY
from repro.utils.retry import RetryPolicy, backoff_delay

#: (candidate_id, row-or-None, error-or-None, wall_seconds) per candidate.
TaskResult = Tuple[str, Optional[Dict[str, object]], Optional[str], float]

#: Poll tick of the dispatch loop (also the signal-responsiveness bound).
_TICK_SECONDS = 0.2

#: Candidates seen in this many pool breaks run isolated from then on.
_ISOLATE_AFTER = 2


def default_workers() -> int:
    """Default fan-out width: a few processes, never oversubscribed."""
    return max(1, min(4, os.cpu_count() or 1))


def default_store_path(spec: CampaignSpec) -> Path:
    """Where a campaign's store lives when the caller does not say."""
    return Path(f"campaign_{spec.name}.sqlite")


# --------------------------------------------------------------------------- #
# The worker side (module-level so process pools can pickle it)
# --------------------------------------------------------------------------- #
def _execute_one(plan, backend: str) -> Dict[str, object]:
    from repro.api.execute import execute

    return execute(plan, backend=backend).to_row()


def _run_batched_chunk(items: Sequence[Tuple[str, object]]) -> List[TaskResult]:
    """Simulate several same-Program candidates in one batched engine pass.

    Rows are bit-identical to per-candidate ``execute`` calls (the batch
    engine's contract, pinned by its own test suite), so chunked and
    unchunked campaigns produce byte-equal stores.
    """
    from repro.api.execute import _simulate_run_result
    from repro.api.resolver import resolve
    from repro.runtime.batch import simulate_resolved_batch

    t0 = time.perf_counter()
    results: List[TaskResult] = []
    resolved = []
    for cid, plan in items:
        try:
            resolved.append((cid, resolve(plan)))
        except Exception as exc:
            results.append((cid, None, f"{type(exc).__name__}: {exc}", 0.0))
    outcomes = simulate_resolved_batch(
        [rp for _, rp in resolved], objective=None, prune=False
    )
    share = (time.perf_counter() - t0) / max(1, len(resolved))
    for (cid, rp), outcome in zip(resolved, outcomes):
        if outcome.error is not None or outcome.result is None:
            results.append((cid, None, outcome.error or "no result", share))
        else:
            row = _simulate_run_result(rp, outcome.result).to_row()
            results.append((cid, row, None, share))
    return results


def _run_task(payload: Tuple) -> List[TaskResult]:
    """Execute one dispatched chunk inside a worker process.

    ``payload`` is ``(backend, faults, items)`` with ``items`` a list of
    ``(candidate_id, plan, attempt)``.  Fault injection (if armed) runs
    per candidate *before* its execution, keyed by the attempt number so
    retries draw independently.  Per-candidate failures are reported as
    data, never raised — only a crash/hang (or a harness bug) takes the
    whole task down.
    """
    backend, faults, items = payload
    results: List[TaskResult] = []
    live: List[Tuple[str, object]] = []
    for cid, plan, attempt in items:
        t0 = time.perf_counter()
        try:
            maybe_inject(faults, cid, attempt)
        except InjectedFault as exc:
            results.append(
                (cid, None, f"{type(exc).__name__}: {exc}", time.perf_counter() - t0)
            )
            continue
        live.append((cid, plan))
    if backend == "simulate" and len(live) > 1:
        results.extend(_run_batched_chunk(live))
        return results
    for cid, plan in live:
        t0 = time.perf_counter()
        try:
            row = _execute_one(plan, backend)
        except Exception as exc:
            results.append(
                (cid, None, f"{type(exc).__name__}: {exc}", time.perf_counter() - t0)
            )
        else:
            results.append((cid, row, None, time.perf_counter() - t0))
    return results


# --------------------------------------------------------------------------- #
# Reports
# --------------------------------------------------------------------------- #
@dataclass
class CampaignReport:
    """Outcome of one :meth:`CampaignRunner.run` call."""

    name: str
    store_path: str
    n_candidates: int
    counts: Dict[str, int] = field(default_factory=dict)
    resumed_skips: int = 0
    retries: int = 0
    timeouts: int = 0
    respawns: int = 0
    quarantined: int = 0
    duplicates: int = 0
    elapsed_seconds: float = 0.0
    interrupted: bool = False

    @property
    def done(self) -> int:
        return self.counts.get("done", 0)

    @property
    def complete(self) -> bool:
        return self.done == self.n_candidates

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "store_path": self.store_path,
            "n_candidates": self.n_candidates,
            "counts": dict(self.counts),
            "resumed_skips": self.resumed_skips,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "respawns": self.respawns,
            "quarantined": self.quarantined,
            "duplicates": self.duplicates,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "interrupted": self.interrupted,
        }

    def summary(self) -> str:
        state = (
            "interrupted (resumable)"
            if self.interrupted
            else ("complete" if self.complete else "finished with failures")
        )
        remaining = (
            self.counts.get("pending", 0)
            + self.counts.get("failed", 0)
            + self.counts.get("running", 0)
        )
        lines = [
            f"campaign       : {self.name} [{state}]",
            f"store          : {self.store_path}",
            f"candidates     : {self.n_candidates} "
            f"({self.done} done, {self.counts.get('quarantined', 0)} quarantined, "
            f"{remaining} remaining)",
            f"skipped (already done) : {self.resumed_skips}",
            f"retries        : {self.retries}",
            f"timeouts       : {self.timeouts}",
            f"pool respawns  : {self.respawns}",
            f"elapsed        : {self.elapsed_seconds:.2f}s",
        ]
        return "\n".join(lines)


@dataclass
class _InFlight:
    """Bookkeeping of one dispatched task."""

    future: Future
    items: List[Tuple[str, object, int]]  # (cid, plan, attempt)
    deadline: Optional[float]
    isolated: bool = False


# --------------------------------------------------------------------------- #
# The runner
# --------------------------------------------------------------------------- #
class CampaignRunner:
    """Execute one campaign spec against one result store, resumably."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: Union[ResultStore, str, Path, None] = None,
        *,
        workers: Optional[int] = None,
        max_attempts: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
        backoff_seconds: Optional[float] = None,
        chunk_size: Optional[int] = None,
        faults: Optional[CampaignFaults] = None,
        requeue_quarantined: bool = False,
        mp_context: Optional[str] = None,
        install_signal_handlers: Optional[bool] = None,
    ) -> None:
        self.spec = spec
        if store is None:
            store = default_store_path(spec)
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.workers = workers or spec.workers or default_workers()
        self.max_attempts = max_attempts or spec.max_attempts
        self.timeout_seconds = (
            timeout_seconds if timeout_seconds is not None else spec.timeout_seconds
        )
        backoff = backoff_seconds if backoff_seconds is not None else spec.backoff_seconds
        self.retry_policy = RetryPolicy(
            attempts=self.max_attempts, backoff=backoff, factor=2.0,
            max_delay=30.0, jitter=0.25, jitter_seed=0,
        )
        self.chunk_size = chunk_size or spec.chunk_size
        self.faults = active_faults() if faults is None else faults
        self.requeue_quarantined = requeue_quarantined
        if mp_context is None:
            mp_context = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self._mp_context = multiprocessing.get_context(mp_context)
        self._install_signals = install_signal_handlers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._interrupts = 0
        self._report: Optional[CampaignReport] = None
        self._seq_counter = 0
        self._candidates_by_id: Optional[Dict[str, Candidate]] = None
        # Crash attribution: pool-break counts per candidate id; at
        # _ISOLATE_AFTER the candidate runs alone so breaks attribute.
        self._crash_streak: Dict[str, int] = {}
        self._hotq: Deque[Candidate] = deque()
        self._hot_inflight = False

    # ------------------------------------------------------------------ #
    # Pool plumbing
    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._mp_context
            )
        return self._pool

    def _teardown_pool(self, kill: bool = True) -> None:
        """Abandon the current pool, killing its workers if asked.

        Used on timeouts (the only portable way to stop a hung worker is
        to kill it), on pool breakage, and on hard interrupts.  A fresh
        pool is spawned lazily by the next dispatch.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        procs = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        if not kill:
            return
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM-immune worker
                proc.kill()

    def worker_pids(self) -> List[int]:
        """Live worker process ids (for tests that kill them)."""
        pool = self._pool
        if pool is None:
            return []
        return [
            proc.pid
            for proc in getattr(pool, "_processes", {}).values()
            if proc.is_alive() and proc.pid is not None
        ]

    # ------------------------------------------------------------------ #
    # Signals
    # ------------------------------------------------------------------ #
    def _signal_handler(self, signum, frame) -> None:  # pragma: no cover - timing
        self._interrupts += 1
        if self._interrupts >= 2:
            # Second signal: stop waiting on in-flight work.
            self._teardown_pool()

    def _with_signals(self) -> bool:
        if self._install_signals is not None:
            return self._install_signals
        return threading.current_thread() is threading.main_thread()

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> CampaignReport:
        """Execute (or resume) the campaign; returns the final report."""
        t_start = time.perf_counter()
        spec = self.spec
        candidates = spec.expand()
        if self.requeue_quarantined:
            self.store.requeue_quarantined()
        reg = self.store.register(candidates, spec.fingerprint())
        REGISTRY.inc("campaign.resumed_skips", reg.already_done)
        report = CampaignReport(
            name=spec.name,
            store_path=str(self.store.path),
            n_candidates=len(candidates),
            resumed_skips=reg.already_done,
        )
        self._report = report

        records = self.store.records()
        status = {rec.candidate_id: rec.status for rec in records}
        attempts = {rec.candidate_id: rec.attempts for rec in records}
        todo = [
            c for c in candidates if status.get(c.candidate_id) in ("pending", "failed")
        ]
        pending: Deque[List[Candidate]] = deque(
            build_chunks(todo, spec.backend, self.chunk_size)
        )
        delayed: List[Tuple[float, int, List[Candidate]]] = []
        inflight: Dict[Future, _InFlight] = {}
        window = self.workers * 2
        interrupted = False

        old_handlers = {}
        if self._with_signals():
            for sig in (signal.SIGINT, signal.SIGTERM):
                old_handlers[sig] = signal.signal(sig, self._signal_handler)
        try:
            while pending or delayed or inflight or self._hotq:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    self._enqueue(heapq.heappop(delayed)[2], pending)
                if self._interrupts == 0:
                    self._submit(pending, attempts, inflight, window)
                if not inflight:
                    if self._interrupts:
                        break
                    if pending or self._hotq:
                        continue
                    # Only backoff-delayed retries remain: sleep to the next.
                    time.sleep(
                        min(_TICK_SECONDS, max(0.0, delayed[0][0] - now))
                        if delayed
                        else _TICK_SECONDS
                    )
                    continue
                timeout = _TICK_SECONDS
                deadlines = [t.deadline for t in inflight.values() if t.deadline]
                if deadlines:
                    timeout = min(timeout, max(0.01, min(deadlines) - now))
                done, _ = futures_wait(
                    set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in done:
                    task = inflight.pop(future)
                    if task.isolated:
                        self._hot_inflight = False
                    try:
                        results = future.result()
                    except BrokenExecutor:
                        broken = True
                        if task.isolated:
                            # Alone in the pool: the crash is attributable.
                            self._charge_task(
                                task,
                                "worker crashed (BrokenProcessPool, isolated run)",
                                attempts, pending, delayed, report,
                            )
                        else:
                            self._crashed(task, pending)
                    except Exception as exc:  # harness-level task failure
                        self._charge_task(
                            task, f"{type(exc).__name__}: {exc}",
                            attempts, pending, delayed, report,
                        )
                    else:
                        self._absorb(task, results, attempts, pending, delayed, report)
                if broken:
                    report.respawns += 1
                    REGISTRY.inc("campaign.respawns")
                    self._teardown_pool()
                    for task in inflight.values():
                        if task.isolated:  # pragma: no cover - defensive
                            self._hot_inflight = False
                        self._crashed(task, pending)
                    inflight.clear()
                self._expire(inflight, attempts, pending, delayed, report)
            interrupted = self._interrupts > 0
            if interrupted and inflight:
                # Hard interrupt: the pool is gone; re-queue uncharged.
                for task in inflight.values():
                    self.store.release([cid for cid, _, _ in task.items])
                inflight.clear()
        except KeyboardInterrupt:
            # No handler installed (e.g. non-main thread): treat like one
            # graceful signal, leaving in-flight rows to requeue_interrupted.
            interrupted = True
            self._teardown_pool()
        finally:
            for sig, handler in old_handlers.items():
                signal.signal(sig, handler)
            self._teardown_pool(kill=self._interrupts > 0)
        report.interrupted = interrupted or self._interrupts > 0
        report.counts = self.store.counts()
        report.elapsed_seconds = time.perf_counter() - t_start
        self.store.set_meta("last_run", json.dumps(report.to_dict(), sort_keys=True))
        return report

    # ------------------------------------------------------------------ #
    # Dispatch / absorb helpers
    # ------------------------------------------------------------------ #
    def _hot(self, cid: str) -> bool:
        return self._crash_streak.get(cid, 0) >= _ISOLATE_AFTER

    def _enqueue(self, chunk: Sequence[Candidate], pending: Deque) -> None:
        """Route re-queued work: crash-suspect candidates go to the
        isolation queue (run alone), the rest back to the normal queue."""
        cold = [c for c in chunk if not self._hot(c.candidate_id)]
        for cand in chunk:
            if self._hot(cand.candidate_id):
                self._hotq.append(cand)
        if cold:
            pending.append(cold)

    def _submit(
        self,
        pending: Deque[List[Candidate]],
        attempts: Dict[str, int],
        inflight: Dict[Future, _InFlight],
        window: int,
    ) -> None:
        if self._hot_inflight:
            return  # an isolated suspect owns the pool
        if self._hotq:
            # Drain the pool, then run the next suspect alone.
            if not inflight:
                cand = self._hotq.popleft()
                if not self._dispatch([cand], attempts, inflight, isolated=True):
                    self._hotq.appendleft(cand)
            return
        while pending and len(inflight) < window:
            chunk = pending.popleft()
            if not self._dispatch(chunk, attempts, inflight):
                pending.appendleft(chunk)
                return

    def _dispatch(
        self,
        chunk: Sequence[Candidate],
        attempts: Dict[str, int],
        inflight: Dict[Future, _InFlight],
        *,
        isolated: bool = False,
    ) -> bool:
        items = [
            (c.candidate_id, c.plan, attempts.get(c.candidate_id, 0) + 1)
            for c in chunk
        ]
        self.store.mark_running([cid for cid, _, _ in items])
        try:
            future = self._ensure_pool().submit(
                _run_task, (self.spec.backend, self.faults, items)
            )
        except BrokenExecutor:
            # A concurrent worker crash broke the pool before this chunk
            # was accepted: nothing ran, so nobody is charged.  Tear the
            # pool down so the next dispatch spawns a fresh one; if no
            # work is in flight nothing else will surface the break, so
            # count the respawn here.
            self.store.release([cid for cid, _, _ in items])
            self._teardown_pool()
            if not inflight and self._report is not None:
                self._report.respawns += 1
                REGISTRY.inc("campaign.respawns")
            return False
        deadline = None
        if self.timeout_seconds is not None:
            deadline = time.monotonic() + self.timeout_seconds * len(items)
        inflight[future] = _InFlight(
            future=future, items=items, deadline=deadline, isolated=isolated
        )
        if isolated:
            self._hot_inflight = True
        return True

    def _absorb(
        self, task, results, attempts, pending, delayed, report
    ) -> None:
        for cid, row, error, wall in results:
            if error is None and row is not None:
                self._crash_streak.pop(cid, None)
                if self.store.mark_done(cid, row, wall):
                    REGISTRY.inc("campaign.done")
                else:
                    report.duplicates += 1
                    REGISTRY.inc("campaign.duplicate_results")
            else:
                self._charge_one(
                    cid, error or "no result", attempts, pending, delayed, report,
                    wall_seconds=wall,
                )

    def _crashed(self, task: _InFlight, pending: Deque) -> None:
        """Re-queue a task lost to an unattributable pool break.

        Nobody is charged an attempt — the culprit is unknown — but every
        candidate's crash streak grows, and repeat offenders graduate to
        isolated dispatch where the next break *is* attributable.
        """
        cids = [cid for cid, _, _ in task.items]
        for cid in cids:
            self._crash_streak[cid] = self._crash_streak.get(cid, 0) + 1
        self.store.release(cids)
        self._enqueue([self._candidate_of(cid) for cid in cids], pending)

    def _charge_task(self, task, error, attempts, pending, delayed, report) -> None:
        for cid, _, _ in task.items:
            self._charge_one(cid, error, attempts, pending, delayed, report)

    def _charge_one(
        self, cid, error, attempts, pending, delayed, report, *, wall_seconds=None
    ) -> None:
        status, n = self.store.charge_failure(
            cid, error, max_attempts=self.max_attempts, wall_seconds=wall_seconds
        )
        attempts[cid] = n
        if status == "quarantined":
            report.quarantined += 1
            REGISTRY.inc("campaign.quarantined")
            self._crash_streak.pop(cid, None)
            return
        if status != "failed":  # raced a completed duplicate; nothing to retry
            return
        report.retries += 1
        REGISTRY.inc("campaign.retries")
        if self._interrupts:
            # Interrupted: leave it 'failed' in the store; resume retries it.
            return
        candidate = self._candidate_of(cid)
        delay = backoff_delay(self.retry_policy, n, key=cid)
        heapq.heappush(
            delayed, (time.monotonic() + delay, self._next_seq(), [candidate])
        )

    def _next_seq(self) -> int:
        self._seq_counter += 1
        return self._seq_counter

    def _candidate_of(self, cid: str) -> Candidate:
        if self._candidates_by_id is None:
            self._candidates_by_id = {
                c.candidate_id: c for c in self.spec.expand()
            }
        return self._candidates_by_id[cid]

    def _expire(self, inflight, attempts, pending, delayed, report) -> None:
        """Kill and re-queue work past its deadline.

        The expired tasks are charged (timeout = one failed attempt);
        since killing a hung worker can only be done by tearing the pool
        down, the *other* in-flight tasks are re-queued uncharged at the
        front of the line.
        """
        now = time.monotonic()
        expired = [
            future
            for future, task in inflight.items()
            if task.deadline is not None and task.deadline <= now
        ]
        if not expired:
            return
        report.respawns += 1
        REGISTRY.inc("campaign.respawns")
        self._teardown_pool()  # kills hung workers; futures are abandoned
        for future in expired:
            task = inflight.pop(future)
            if task.isolated:
                self._hot_inflight = False
            for cid, _, attempt in task.items:
                report.timeouts += 1
                REGISTRY.inc("campaign.timeouts")
                self._charge_one(
                    cid,
                    f"TimeoutError: attempt {attempt} exceeded "
                    f"{self.timeout_seconds}s per-candidate budget",
                    attempts,
                    pending,
                    delayed,
                    report,
                )
        for task in inflight.values():
            if task.isolated:  # pragma: no cover - defensive
                self._hot_inflight = False
            cids = [cid for cid, _, _ in task.items]
            self.store.release(cids)
            if self._interrupts == 0:
                self._enqueue([self._candidate_of(cid) for cid in cids], pending)
        inflight.clear()


def run_campaign(
    spec: CampaignSpec,
    store: Union[ResultStore, str, Path, None] = None,
    **kwargs,
) -> CampaignReport:
    """One-call convenience wrapper: build a runner and run it."""
    runner = CampaignRunner(spec, store, **kwargs)
    try:
        return runner.run()
    finally:
        if not isinstance(store, ResultStore):
            runner.store.close()
