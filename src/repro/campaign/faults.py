"""Campaign-level fault injection: make workers crash, hang and raise.

Distinct from :mod:`repro.runtime.faults` (which perturbs the *simulated*
machine inside the engine), this module attacks the campaign runner's own
workers so its recovery paths — ``BrokenProcessPool`` respawn, per-task
timeouts, bounded retries, quarantine — are themselves tested and
benchmarked, not just written.

Faults are declared in the environment so any campaign entry point can be
hardened without code changes::

    REPRO_CAMPAIGN_FAULTS="crash:0.1,hang:0.05,raise:0.2" repro campaign run ...

Syntax: comma-separated ``kind:probability`` terms, where ``kind`` is

* ``crash`` — the worker process dies hard (``os._exit``), exactly like
  a kill -9 / OOM kill: the pool breaks and must be respawned;
* ``hang``  — the worker sleeps (default effectively forever; an optional
  third field sets the duration, e.g. ``hang:0.1:0.5``), exercising the
  per-task timeout and kill path;
* ``raise`` — the worker raises :class:`InjectedFault`, the ordinary
  retriable-failure path;

plus two modifiers: ``seed:N`` reseeds the draws and ``limit:N``
restricts injection to the first ``N`` attempts of each candidate —
with ``limit < max_attempts`` a faulty campaign is *guaranteed* to
converge, which is what lets CI and the benchmark assert bitwise-equal
completion under injected faults.

Draws are deterministic per ``(seed, candidate_id, attempt)``: a given
attempt of a given candidate always behaves the same (reproducible
failure schedules), while its retry gets an independent draw.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Optional

#: Environment variable holding the fault spec.
ENV_VAR = "REPRO_CAMPAIGN_FAULTS"

#: Exit code of an injected hard crash (visible in worker post-mortems).
CRASH_EXIT_CODE = 77

#: Default sleep of an injected hang — far beyond any sane task timeout.
DEFAULT_HANG_SECONDS = 3600.0


class InjectedFault(RuntimeError):
    """The exception an injected ``raise`` fault throws in the worker."""


@dataclass(frozen=True)
class CampaignFaults:
    """Parsed injection probabilities (independent per attempt)."""

    crash: float = 0.0
    hang: float = 0.0
    raise_: float = 0.0
    hang_seconds: float = DEFAULT_HANG_SECONDS
    seed: int = 0
    #: Inject only on attempts ``<= limit`` (0 = unlimited).
    limit: int = 0

    def __post_init__(self) -> None:
        for name in ("crash", "hang", "raise_"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1], got {p}")
        if self.crash + self.hang + self.raise_ > 1.0:
            raise ValueError("fault probabilities must sum to <= 1")
        if self.hang_seconds <= 0:
            raise ValueError(f"hang duration must be > 0, got {self.hang_seconds}")
        if self.limit < 0:
            raise ValueError(f"limit must be >= 0, got {self.limit}")

    @property
    def any(self) -> bool:
        return (self.crash + self.hang + self.raise_) > 0.0


def parse_faults(text: str) -> CampaignFaults:
    """Parse a ``crash:0.1,hang:0.05,raise:0.2,limit:2`` spec string."""
    kwargs: dict = {}
    for raw in text.split(","):
        term = raw.strip()
        if not term:
            continue
        parts = term.split(":")
        kind = parts[0].strip().lower()
        if len(parts) < 2:
            raise ValueError(f"fault term {term!r} needs kind:value")
        if kind in ("seed", "limit"):
            kwargs[kind] = int(parts[1])
            continue
        if kind not in ("crash", "hang", "raise"):
            raise ValueError(
                f"unknown fault kind {kind!r}; "
                "known: crash, hang, raise, seed, limit"
            )
        key = "raise_" if kind == "raise" else kind
        if key in kwargs:
            raise ValueError(f"duplicate fault kind {kind!r}")
        kwargs[key] = float(parts[1])
        if kind == "hang" and len(parts) > 2:
            kwargs["hang_seconds"] = float(parts[2])
        elif len(parts) > 2:
            raise ValueError(f"fault term {term!r} has too many fields")
    return CampaignFaults(**kwargs)


def active_faults(environ: Optional[dict] = None) -> Optional[CampaignFaults]:
    """The fault spec from :data:`ENV_VAR`, or ``None`` when unset/empty."""
    env = os.environ if environ is None else environ
    text = env.get(ENV_VAR, "").strip()
    if not text:
        return None
    faults = parse_faults(text)
    return faults if faults.any else None


def fault_draw(
    faults: CampaignFaults, candidate_id: str, attempt: int
) -> Optional[str]:
    """The fault (``"crash"`` / ``"hang"`` / ``"raise"`` / ``None``) this
    attempt is destined for — pure and deterministic, so recovery tests
    can predict schedules without running anything."""
    if not faults.any:
        return None
    if faults.limit and attempt > faults.limit:
        return None
    u = random.Random(f"{faults.seed}:{candidate_id}:{attempt}").random()
    if u < faults.crash:
        return "crash"
    if u < faults.crash + faults.hang:
        return "hang"
    if u < faults.crash + faults.hang + faults.raise_:
        return "raise"
    return None


def maybe_inject(
    faults: Optional[CampaignFaults], candidate_id: str, attempt: int
) -> None:
    """Run inside the worker, before executing a candidate.

    Depending on the deterministic draw: exits the process hard, sleeps
    through the task's timeout budget, raises :class:`InjectedFault`, or
    returns quietly.
    """
    if faults is None:
        return
    kind = fault_draw(faults, candidate_id, attempt)
    if kind is None:
        return
    if kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if kind == "hang":
        time.sleep(faults.hang_seconds)
        return
    raise InjectedFault(
        f"injected fault for candidate {candidate_id} attempt {attempt}"
    )
