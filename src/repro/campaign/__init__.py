"""Fault-tolerant campaign runner: resumable sweeps that survive crashes.

The existing :func:`repro.api.execute_sweep` runs a parameter sweep in
one process and loses everything on the first crash.  This package turns
a sweep into a *campaign* — a declarative spec executed through a
process pool with bounded retries, per-task timeouts, worker-crash
recovery and a crash-consistent sqlite result store, so a killed or
interrupted campaign resumes exactly where it stopped::

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="tree-study",
        base={"m": 1024, "n": 768, "tile_size": 128, "n_cores": 4},
        axes={"tree": ["flatts", "greedy", "binary"]},
        max_attempts=3,
        timeout_seconds=60,
    )
    report = run_campaign(spec, "tree-study.sqlite")
    assert report.complete

Modules: :mod:`~repro.campaign.spec` (declarative sweeps, stable
candidate ids), :mod:`~repro.campaign.store` (sqlite WAL ledger,
exactly-once results), :mod:`~repro.campaign.runner` (pool fan-out,
retry/timeout/respawn/quarantine, signal-drain resume),
:mod:`~repro.campaign.faults` (campaign-level crash/hang/raise
injection) and :mod:`~repro.campaign.aggregate` (tables and summaries).
"""

from repro.campaign.aggregate import (
    campaign_rows,
    campaign_table,
    quarantine_report,
    status_summary,
)
from repro.campaign.faults import (
    CampaignFaults,
    InjectedFault,
    active_faults,
    fault_draw,
    parse_faults,
)
from repro.campaign.runner import CampaignReport, CampaignRunner, run_campaign
from repro.campaign.spec import (
    Candidate,
    CampaignSpec,
    build_chunks,
    candidate_id,
)
from repro.campaign.store import CandidateRecord, RegisterReport, ResultStore

__all__ = [
    "CampaignFaults",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "Candidate",
    "CandidateRecord",
    "InjectedFault",
    "RegisterReport",
    "ResultStore",
    "active_faults",
    "build_chunks",
    "campaign_rows",
    "campaign_table",
    "candidate_id",
    "fault_draw",
    "parse_faults",
    "quarantine_report",
    "run_campaign",
    "status_summary",
]
