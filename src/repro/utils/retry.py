"""Bounded retry with exponential backoff and deterministic jitter.

Fault-tolerant layers (the campaign runner, the tuning pool) share one
retry shape: try a callable a bounded number of times, sleeping an
exponentially growing delay between attempts, with a little jitter so a
fleet of retriers does not stampede in lockstep.  The jitter here is
*deterministic* — seeded from ``(jitter_seed, key, attempt)`` — so retry
schedules are reproducible run to run and testable to the exact float.

:func:`backoff_delay` is the pure schedule; :func:`retry` drives a
callable through it, optionally bounding each attempt with a wall-clock
``timeout`` (enforced by running the attempt on a worker thread — an
attempt that overruns is *abandoned*, not killed, so only use ``timeout``
with callables that are safe to leave running).
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Schedule of one bounded-retry loop.

    ``attempts`` is the total number of tries (1 = no retry).  The delay
    before retry ``k`` (1-based: the sleep after the ``k``-th failure) is

        ``min(max_delay, backoff * factor**(k-1)) * (1 + jitter * u)``

    where ``u`` is a uniform [0, 1) draw seeded by ``(jitter_seed, key,
    k)`` — deterministic per retrier and attempt, decorrelated across
    retriers via ``key``.
    """

    attempts: int = 3
    backoff: float = 0.1
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.25
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.backoff < 0 or self.max_delay < 0:
            raise ValueError("backoff and max_delay must be >= 0")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")


def backoff_delay(policy: RetryPolicy, attempt: int, key: str = "") -> float:
    """The deterministic sleep before retry ``attempt`` (1-based).

    Seeding :class:`random.Random` with a string hashes it through
    SHA-512, which is stable across processes and ``PYTHONHASHSEED``
    values — unlike ``hash()`` — so the jitter sequence is reproducible
    anywhere.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    base = min(policy.max_delay, policy.backoff * policy.factor ** (attempt - 1))
    if policy.jitter == 0 or base == 0:
        return base
    u = random.Random(f"{policy.jitter_seed}:{key}:{attempt}").random()
    return base * (1.0 + policy.jitter * u)


def _call_with_timeout(fn: Callable[[], T], timeout: float) -> T:
    """Run ``fn`` with a wall-clock bound, raising ``TimeoutError``.

    The attempt runs on a daemon worker thread; on timeout the thread is
    abandoned (Python cannot kill it), so this is only suitable for
    callables whose overrun is harmless — e.g. a blocking wait that the
    caller is about to tear down anyway.
    """
    pool = ThreadPoolExecutor(max_workers=1)
    future = pool.submit(fn)
    try:
        return future.result(timeout=timeout)
    except FutureTimeoutError:
        raise TimeoutError(f"attempt exceeded {timeout}s") from None
    finally:
        # Never join the (possibly still running) worker thread.
        pool.shutdown(wait=False)


def retry(
    fn: Callable[[], T],
    *,
    attempts: int = 3,
    backoff: float = 0.1,
    factor: float = 2.0,
    max_delay: float = 30.0,
    jitter: float = 0.25,
    jitter_seed: int = 0,
    key: str = "",
    timeout: Optional[float] = None,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> T:
    """Call ``fn()`` up to ``attempts`` times, backing off between failures.

    Only exceptions matching ``retry_on`` are retried; anything else (and
    the final failure) propagates.  ``timeout`` bounds each attempt's
    wall-clock via :func:`_call_with_timeout` (a timed-out attempt raises
    — and is retried as — ``TimeoutError``; include it in ``retry_on`` if
    it is not already an ``Exception`` subclass in your taxonomy).
    ``on_retry(attempt, exc, delay)`` is invoked before each backoff
    sleep — the hook where callers respawn broken pools or log.
    """
    policy = RetryPolicy(
        attempts=attempts,
        backoff=backoff,
        factor=factor,
        max_delay=max_delay,
        jitter=jitter,
        jitter_seed=jitter_seed,
    )
    last: Optional[BaseException] = None
    for attempt in range(1, policy.attempts + 1):
        try:
            if timeout is not None:
                return _call_with_timeout(fn, timeout)
            return fn()
        except retry_on as exc:
            last = exc
            if attempt == policy.attempts:
                raise
            delay = backoff_delay(policy, attempt, key=key)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                sleep(delay)
    raise AssertionError(f"unreachable retry exit (last={last!r})")  # pragma: no cover
