"""Utilities: test-matrix generators and validation helpers."""

from repro.utils.generators import latms, random_matrix, graded_singular_values
from repro.utils.validation import (
    relative_error,
    max_relative_error,
    orthogonality_error,
    reconstruction_error,
)

__all__ = [
    "latms",
    "random_matrix",
    "graded_singular_values",
    "relative_error",
    "max_relative_error",
    "orthogonality_error",
    "reconstruction_error",
]
