"""Utilities: test-matrix generators, validation helpers and retry."""

from repro.utils.generators import latms, random_matrix, graded_singular_values
from repro.utils.retry import RetryPolicy, backoff_delay, retry
from repro.utils.validation import (
    relative_error,
    max_relative_error,
    orthogonality_error,
    reconstruction_error,
)

__all__ = [
    "latms",
    "random_matrix",
    "graded_singular_values",
    "relative_error",
    "max_relative_error",
    "orthogonality_error",
    "reconstruction_error",
    "RetryPolicy",
    "backoff_delay",
    "retry",
]
