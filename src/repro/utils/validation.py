"""Numerical validation helpers shared by tests, examples and benchmarks."""

from __future__ import annotations

import numpy as np


def relative_error(computed: np.ndarray, reference: np.ndarray) -> float:
    """``||computed - reference|| / ||reference||`` (2-norm of the flattened arrays)."""
    computed = np.asarray(computed, dtype=float)
    reference = np.asarray(reference, dtype=float)
    denom = np.linalg.norm(reference)
    if denom == 0.0:
        return float(np.linalg.norm(computed))
    return float(np.linalg.norm(computed - reference) / denom)


def max_relative_error(computed: np.ndarray, reference: np.ndarray) -> float:
    """Element-wise maximum relative error, guarding against zero reference values.

    Entries whose reference value is below ``1e-300`` are compared absolutely
    (scaled by the largest reference entry).
    """
    computed = np.asarray(computed, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if computed.shape != reference.shape:
        raise ValueError(f"shape mismatch: {computed.shape} vs {reference.shape}")
    scale = np.maximum(np.abs(reference), 1e-300 + np.max(np.abs(reference)) * 1e-16)
    return float(np.max(np.abs(computed - reference) / scale))


def orthogonality_error(q: np.ndarray) -> float:
    """``||Q^T Q - I||_F / sqrt(n)`` — how far the columns are from orthonormal."""
    q = np.asarray(q, dtype=float)
    n = q.shape[1]
    gram = q.T @ q
    return float(np.linalg.norm(gram - np.eye(n)) / max(np.sqrt(n), 1.0))


def reconstruction_error(a: np.ndarray, u: np.ndarray, s: np.ndarray, vt: np.ndarray) -> float:
    """``||A - U diag(s) V^T||_F / ||A||_F``."""
    a = np.asarray(a, dtype=float)
    approx = (u * s) @ vt
    denom = np.linalg.norm(a)
    if denom == 0.0:
        return float(np.linalg.norm(approx))
    return float(np.linalg.norm(a - approx) / denom)
