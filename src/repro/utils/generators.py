"""Test-matrix generators.

The paper generates its experimental matrices with LAPACK's ``LATMS``
routine: random orthogonal factors around a prescribed set of singular
values, which lets it check the computed singular values "to machine
precision".  :func:`latms` reproduces that: ``A = U diag(sigma) V^T`` with
Haar-distributed ``U`` and ``V``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def _haar_orthogonal(n: int, rng: np.random.Generator) -> np.ndarray:
    """A Haar-distributed random orthogonal matrix (QR of a Gaussian)."""
    z = rng.standard_normal((n, n))
    q, r = np.linalg.qr(z)
    # Fix the signs so the distribution is exactly Haar.
    q *= np.sign(np.diagonal(r))
    return q


def latms(
    m: int,
    n: int,
    singular_values: Sequence[float],
    *,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Generate an ``m x n`` matrix with prescribed singular values.

    Parameters
    ----------
    m, n:
        Matrix dimensions (``m >= n``).
    singular_values:
        The ``n`` prescribed singular values (non-negative).
    seed, rng:
        Randomness control (``rng`` wins if both are given).
    """
    if m < n:
        raise ValueError(f"expected m >= n, got {m}x{n}")
    sigma = np.asarray(singular_values, dtype=float)
    if sigma.shape != (n,):
        raise ValueError(f"expected {n} singular values, got shape {sigma.shape}")
    if np.any(sigma < 0):
        raise ValueError("singular values must be non-negative")
    if rng is None:
        rng = np.random.default_rng(seed)
    u = _haar_orthogonal(m, rng)[:, :n]
    v = _haar_orthogonal(n, rng)
    return (u * sigma) @ v.T


def graded_singular_values(n: int, condition: float = 1e6) -> np.ndarray:
    """Geometrically graded singular values from 1 down to ``1/condition``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if condition < 1:
        raise ValueError("condition must be >= 1")
    if n == 1:
        return np.array([1.0])
    return np.logspace(0, -np.log10(condition), n)


def random_matrix(
    m: int,
    n: int,
    *,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """A dense ``m x n`` standard-normal matrix."""
    if rng is None:
        rng = np.random.default_rng(seed)
    return rng.standard_normal((m, n))
