"""Result I/O helpers: rows of experiment results to/from CSV and JSON.

The benchmark harness and the CLI produce lists of dictionaries ("rows");
these helpers persist them so figures can be regenerated or post-processed
outside the benchmark session.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

Row = Dict[str, object]
PathLike = Union[str, Path]


def save_rows_csv(rows: Sequence[Row], path: PathLike, *, columns: Optional[Sequence[str]] = None) -> None:
    """Write rows to a CSV file.

    ``columns`` fixes the column order; by default the union of all keys is
    used, in first-appearance order.
    """
    path = Path(path)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def load_rows_csv(path: PathLike) -> List[Row]:
    """Read rows back from a CSV file, converting numeric strings to numbers."""
    path = Path(path)
    rows: List[Row] = []
    with path.open(newline="", encoding="utf-8") as handle:
        for raw in csv.DictReader(handle):
            rows.append({key: _coerce(value) for key, value in raw.items()})
    return rows


def save_rows_json(rows: Sequence[Row], path: PathLike, *, indent: int = 2) -> None:
    """Write rows to a JSON file."""
    Path(path).write_text(json.dumps(list(rows), indent=indent), encoding="utf-8")


def load_rows_json(path: PathLike) -> List[Row]:
    """Read rows back from a JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, list):
        raise ValueError(f"{path} does not contain a list of rows")
    return data


def rows_to_markdown(rows: Sequence[Row], columns: Optional[Sequence[str]] = None) -> str:
    """Format rows as a GitHub-flavoured markdown table."""
    if not rows:
        return "(no data)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    header = "| " + " | ".join(str(c) for c in columns) + " |"
    sep = "| " + " | ".join("---" for _ in columns) + " |"
    lines = [header, sep]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _coerce(value: object) -> object:
    """Best-effort string -> int/float conversion used when loading CSV."""
    if not isinstance(value, str):
        return value
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value
