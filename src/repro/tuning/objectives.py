"""Objectives that score candidate plans.

An :class:`Objective` turns one resolved plan into a scalar score through
one of the lenses the repo already has — the runtime simulator, the
critical-path engine or the communication-volume analysis — so one tuner
serves shared-memory, distributed and tall-skinny scenarios alike:

* ``makespan``      — simulated wall-clock seconds (minimize);
* ``gflops``        — simulated GFlop/s in the paper's reporting
  convention (maximize);
* ``robust-makespan`` — p95 simulated seconds across the plan's
  Monte-Carlo scenario draws (minimize; reliability-aware);
* ``critical-path`` — DAG critical path in Table-I weight units, i.e. the
  unbounded-resource limit (minimize);
* ``comm-volume``   — inter-node bytes moved under the block-cyclic
  distribution (minimize; zero on one node).

Objectives may also expose an *optimistic analytic bound* on their score
(:meth:`Objective.bound`): a flop-count limit no schedule can beat within
the performance model.  The search strategies use it to prune candidates
that provably cannot improve on the best score already measured, which is
what keeps large sweeps fast.

All the DAG-consuming objectives resolve their op stream through the
shared in-process program cache (:mod:`repro.ir`): candidates that share a
DAG shape — same variant, tile grid, tree and core count, e.g. an
inner-block or policy sweep at fixed ``nb`` — trace it once and replay it
from then on, instead of re-tracing per candidate.  Replays additionally
share the engine's per-program memo tables
(:mod:`repro.runtime.engine`): the (machine, program) duration vector,
the (program, grid) owner vector and the (program, machine, grid,
policy) rank keys are computed once per cached program and reused by
every candidate — and every tuning worker thread — that shares it, so a
policy or inner-block sweep pays the array setup once and then only the
event loop per candidate.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.api.resolver import ResolvedPlan
from repro.kernels.costs import KernelName, kernel_efficiency
from repro.models.flops import (
    ge2bd_flops,
    ge2bnd_reported_flops,
    ge2val_reported_flops,
    rbidiag_flops,
)


def _analytic_time_bound(resolved: ResolvedPlan) -> float:
    """Optimistic simulated time for ``resolved`` (seconds).

    The GE2BND makespan can never beat perfect parallelism at the best
    per-kernel rate of the resolved tile geometry, and the GE2VAL
    post-processing stages run at fixed single-node rates — both are cheap
    closed forms, so the bound costs nothing compared to a simulation.
    """
    from repro.runtime.simulator import post_processing_seconds

    machine = resolved.machine
    if resolved.variant == "rbidiag":
        work = rbidiag_flops(resolved.m, resolved.n)
    else:
        work = ge2bd_flops(resolved.m, resolved.n)
    best_eff = max(
        kernel_efficiency(kernel, machine.tile_size, machine.inner_block)
        for kernel in KernelName
    )
    bound = work / (machine.peak_gflops * 1e9 * best_eff)
    if resolved.stage == "ge2val":
        bound += post_processing_seconds(resolved.n, machine)
    return bound


class Objective:
    """Base class: a named, directed score over resolved plans.

    Subclasses set :attr:`name`, :attr:`direction` (``"min"`` or ``"max"``)
    and :attr:`units`, and implement :meth:`score`.  :meth:`cost` maps a
    score onto the minimized axis so strategies never branch on direction.
    """

    name: str = ""
    direction: str = "min"
    units: str = ""
    description: str = ""
    #: Batch objective key understood by
    #: :func:`repro.runtime.batch.simulate_resolved_batch`, or ``None``
    #: when the objective must be scored per plan (non-simulator backends,
    #: custom subclasses).  Simulator-backed objectives set it so the
    #: search strategies can evaluate whole candidate waves through one
    #: vectorized engine pass with bit-identical scores.
    batch_key: Optional[str] = None

    def score(self, resolved: ResolvedPlan) -> float:
        raise NotImplementedError

    def bound(self, resolved: ResolvedPlan) -> Optional[float]:
        """Optimistic score bound, or ``None`` when no cheap bound exists."""
        return None

    def cost(self, score: float) -> float:
        """Score mapped so that lower is always better."""
        return score if self.direction == "min" else -score

    def check_stage(self, stage: str) -> None:
        """Reject stages this objective's backend cannot model."""
        if stage == "gesvd":
            raise ValueError(
                f"objective {self.name!r} scores plans with the analytic backends, "
                "which do not model the 'gesvd' stage; tune a 'ge2val' plan instead"
            )


class MakespanObjective(Objective):
    """Simulated wall-clock seconds (the paper's primary metric)."""

    name = "makespan"
    direction = "min"
    units = "s"
    description = "simulated runtime (list scheduler, Section V machine model)"
    batch_key = "makespan"

    def score(self, resolved: ResolvedPlan) -> float:
        from repro.api.execute import execute

        return float(execute(resolved, backend="simulate").time_seconds)

    def bound(self, resolved: ResolvedPlan) -> Optional[float]:
        return _analytic_time_bound(resolved)


class GflopsObjective(Objective):
    """Simulated GFlop/s in the paper's reporting convention."""

    name = "gflops"
    direction = "max"
    units = "GFlop/s"
    description = "simulated rate, normalised by the direct-bidiagonalization flops"
    batch_key = "gflops"

    def score(self, resolved: ResolvedPlan) -> float:
        from repro.api.execute import execute

        return float(execute(resolved, backend="simulate").gflops)

    def bound(self, resolved: ResolvedPlan) -> Optional[float]:
        if resolved.stage == "ge2val":
            reported = ge2val_reported_flops(resolved.m, resolved.n)
        else:
            reported = ge2bnd_reported_flops(resolved.m, resolved.n)
        return reported / _analytic_time_bound(resolved) / 1e9


class RobustMakespanObjective(Objective):
    """p95 makespan across Monte-Carlo scenario draws (minimize).

    Scores a plan by the 95th-percentile makespan of its scenario's
    Monte-Carlo draws — "how slow does this plan get on a bad day?" —
    so tuning races candidates on *reliability* rather than best-case
    speed.  Plans without a stochastic scenario degrade to the nominal
    makespan (the distributions collapse to a point), making the
    objective a drop-in superset of ``makespan``.

    The analytic bound stays the deterministic one: every scenario
    perturbation factor is ``>= 1`` by construction
    (:mod:`repro.runtime.faults`), so no draw — hence no p95 — can beat
    the ideal-machine flop bound, and pruning remains conservative.
    """

    name = "robust-makespan"
    direction = "min"
    units = "s"
    description = (
        "p95 simulated runtime across Monte-Carlo scenario draws "
        "(reliability-aware tuning; needs SvdPlan(scenario=...))"
    )
    batch_key = "robust-makespan"

    def score(self, resolved: ResolvedPlan) -> float:
        from repro.api.execute import execute

        result = execute(resolved, backend="simulate")
        if result.distribution is not None:
            return float(result.distribution.p95)
        return float(result.time_seconds)

    def bound(self, resolved: ResolvedPlan) -> Optional[float]:
        return _analytic_time_bound(resolved)


class CriticalPathObjective(Objective):
    """DAG critical path: parallel time with unbounded resources."""

    name = "critical-path"
    direction = "min"
    units = "nb^3/3 flops"
    description = "critical path of the traced task graph (Section IV)"

    def score(self, resolved: ResolvedPlan) -> float:
        from repro.api.execute import execute

        return float(execute(resolved, backend="dag").critical_path)


class CommVolumeObjective(Objective):
    """Inter-node communication volume under the resolved distribution."""

    name = "comm-volume"
    direction = "min"
    units = "bytes"
    description = "bytes moved across the network (owner-computes, Section VI-D)"

    def score(self, resolved: ResolvedPlan) -> float:
        from repro.analysis.communication import communication_volume
        from repro.ir import get_program

        program = get_program(
            resolved.variant,
            resolved.p,
            resolved.q,
            resolved.tree,
            n_cores=resolved.plan.n_cores,
            grid_rows=resolved.grid.rows,
        )
        stats = communication_volume(
            program, resolved.distribution, tile_size=resolved.tile_size
        )
        return float(stats.bytes_moved)


class CommTimeObjective(Objective):
    """Simulated communication seconds under the plan's network model.

    Comm-aware tuning: the score is the total per-node sending time of the
    simulated schedule (NIC injection seconds under ``network="alpha-beta"``,
    ``sent * transfer_time`` under ``uniform``), which is what separates the
    flat and greedy top trees on the paper's distributed square cases
    (Section VI-D) even when their makespans are close.  Zero on one node,
    like ``comm-volume``.
    """

    name = "comm-time"
    direction = "min"
    units = "s"
    batch_key = "comm-time"
    description = (
        "simulated sending seconds under the plan's network model "
        "(alpha-beta for message-level fidelity, Section VI-D)"
    )

    def score(self, resolved: ResolvedPlan) -> float:
        from repro.api.execute import execute

        return float(execute(resolved, backend="simulate").comm_seconds)


#: Name -> objective instance (objectives are stateless).
OBJECTIVES: Dict[str, Objective] = {
    obj.name: obj
    for obj in (
        MakespanObjective(),
        GflopsObjective(),
        RobustMakespanObjective(),
        CriticalPathObjective(),
        CommVolumeObjective(),
        CommTimeObjective(),
    )
}


def get_objective(objective) -> Objective:
    """Coerce a name or instance to an :class:`Objective`."""
    if isinstance(objective, Objective):
        return objective
    try:
        return OBJECTIVES[str(objective).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown objective {objective!r}; available: {sorted(OBJECTIVES)}"
        ) from None
