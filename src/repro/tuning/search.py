"""Search strategies and the :func:`tune` entry point.

Two strategies cover the sweep shapes the paper's tuning needs:

* :class:`GridSearch` — evaluate every candidate, optionally in parallel
  (``concurrent.futures``) and with analytic-model pruning: candidates are
  visited most-promising-first (by the objective's optimistic bound) and a
  candidate whose bound already exceeds the best *measured* cost is skipped
  without running its simulation.  Pruning is conservative — only strictly
  worse candidates are dropped — so a pruned grid search returns the same
  winner as the exhaustive one.

* :class:`SuccessiveHalving` — evaluate every candidate on a scaled-down
  problem first, keep the top ``1/eta`` fraction, scale the problem up and
  repeat; only the survivors ever run at full size.  Cheap for large spaces
  where the ranking stabilises early.

:func:`tune` wraps a strategy with the persistent
:class:`~repro.tuning.cache.PlanCache`, keyed by (problem, machine,
objective, strategy, expanded space), so a repeated call answers in O(1)
without touching the simulator.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.api.plan import SvdPlan
from repro.api.resolver import ResolvedPlan, resolve, tree_display_name
from repro.config import default_config
from repro.tiles.matrix import TiledMatrix
from repro.tuning.cache import PlanCache, cache_key
from repro.tuning.objectives import Objective, get_objective
from repro.tuning.space import SearchSpace
from repro.utils.retry import retry


# --------------------------------------------------------------------------- #
# Candidate evaluation (shared by both strategies)
# --------------------------------------------------------------------------- #
def _score_one(
    objective: Union[str, Objective], plan: SvdPlan
) -> Tuple[Optional[float], Optional[str]]:
    """Score one candidate; module-level so process pools can pickle it.

    The objective comes first so waves can map ``partial(_score_one,
    objective)`` over plans — the objective is then pickled once per
    ``Executor.map`` call instead of once per candidate.
    """
    try:
        objective = get_objective(objective)
        return objective.score(resolve(plan)), None
    except Exception as exc:  # a failing candidate is reported, not fatal
        return None, f"{type(exc).__name__}: {exc}"


def _score_resolved(
    plan: SvdPlan,
    resolved: Optional[ResolvedPlan],
    objective: Objective,
) -> Tuple[Optional[float], Optional[str]]:
    """Serial-path scorer, reusing the resolution done for the bound."""
    try:
        if resolved is None:
            resolved = resolve(plan)
        return objective.score(resolved), None
    except Exception as exc:
        return None, f"{type(exc).__name__}: {exc}"


@dataclass
class Evaluation:
    """One scored (or pruned / failed) candidate."""

    plan: SvdPlan
    score: Optional[float] = None
    cost: float = float("inf")
    bound: Optional[float] = None
    pruned: bool = False
    error: Optional[str] = None
    #: The (m, n) shape the score was measured at (successive halving
    #: scores early rungs on scaled-down problems).
    fidelity: Optional[Tuple[int, int]] = None

    def to_row(self) -> Dict[str, object]:
        plan = self.plan
        config = plan.config if plan.config is not None else default_config
        row: Dict[str, object] = {
            "tile_size": plan.tile_size,
            "inner_block": config.inner_block,
            "tree": tree_display_name(plan.tree),
            "variant": plan.variant,
            "grid": f"{plan.grid[0]}x{plan.grid[1]}" if plan.grid else "default",
            "score": self.score,
            "pruned": self.pruned,
        }
        if self.fidelity is not None:
            row["fidelity_m"], row["fidelity_n"] = self.fidelity
        if self.error is not None:
            row["error"] = self.error
        return row


class _PoolBox:
    """A self-healing ``concurrent.futures`` pool for candidate scoring.

    A worker process dying (OOM kill, hard crash in a scoring run) breaks
    a ``ProcessPoolExecutor`` permanently; every later ``map`` raises
    ``BrokenProcessPool``.  This wrapper routes ``map`` through
    :func:`repro.utils.retry.retry`, respawning the pool between attempts
    — a search survives worker deaths at the cost of re-scoring the
    broken wave — and reports each respawn on the
    ``tuning.pool.respawns`` counter.
    """

    #: Map attempts per wave (original + retries after respawn).
    attempts = 3

    def __init__(self, workers: int, executor: str) -> None:
        self.workers = workers
        self.executor = executor
        self._pool = self._build()

    def _build(self) -> Executor:
        pool_cls = (
            ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
        )
        return pool_cls(max_workers=self.workers)

    def _respawn(self, attempt: int, exc: BaseException, delay: float) -> None:
        from repro.obs.metrics import REGISTRY

        REGISTRY.inc("tuning.pool.respawns")
        try:
            self._pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass
        self._pool = self._build()

    def map(self, fn, items, chunksize: int = 1) -> list:
        items = list(items)
        return retry(
            lambda: list(self._pool.map(fn, items, chunksize=chunksize)),
            attempts=self.attempts,
            backoff=0.05,
            key="tuning-pool",
            retry_on=(BrokenExecutor,),
            on_retry=self._respawn,
        )

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)


def _make_pool(
    workers: int, executor: str, n_candidates: int
) -> Optional[_PoolBox]:
    """One shared pool for a whole search, or ``None`` when serial wins."""
    if workers > 1 and n_candidates > 1:
        return _PoolBox(workers, executor)
    return None


def _race_batch(
    candidates: Sequence[SvdPlan],
    objective: Objective,
    *,
    prune: bool,
    fidelity: Optional[Tuple[int, int]] = None,
) -> List[Evaluation]:
    """Score a whole candidate wave through one vectorized engine pass.

    Routes every resolvable candidate through
    :func:`repro.runtime.batch.simulate_resolved_batch`, which shares the
    compiled program, duration/owner/rank vectors and analytic pruning
    bounds across the wave; scores are bit-identical to per-candidate
    ``objective.score(resolve(plan))`` calls and the pruned winner matches
    the exhaustive one.  Pruning decisions come from the batch layer's
    engine-level lower bounds (at least as tight as
    :meth:`~repro.tuning.objectives.Objective.bound`), so
    ``Evaluation.bound`` is left unset here.
    """
    from repro.runtime.batch import simulate_resolved_batch

    evals = [Evaluation(plan=plan, fidelity=fidelity) for plan in candidates]
    indices: List[int] = []
    resolved_plans: List[ResolvedPlan] = []
    for i, ev in enumerate(evals):
        try:
            resolved_plans.append(resolve(ev.plan))
        except Exception as exc:
            ev.error = f"{type(exc).__name__}: {exc}"
            continue
        indices.append(i)
    outcomes = simulate_resolved_batch(
        resolved_plans, objective=objective.batch_key, prune=prune
    )
    for i, outcome in zip(indices, outcomes):
        ev = evals[i]
        if outcome.pruned:
            ev.pruned = True
        elif outcome.error is not None:
            ev.error = outcome.error
        elif outcome.score is not None:
            ev.score = outcome.score
            ev.cost = objective.cost(outcome.score)
    return evals


def _race(
    candidates: Sequence[SvdPlan],
    objective: Objective,
    *,
    workers: int,
    executor: str,
    prune: bool,
    fidelity: Optional[Tuple[int, int]] = None,
    batch: bool = False,
    pool: Optional[_PoolBox] = None,
) -> List[Evaluation]:
    """Evaluate ``candidates``, most-promising-first, pruning hopeless ones.

    Returns one :class:`Evaluation` per candidate, in the original order.
    A candidate is pruned only when its optimistic bound is *strictly*
    worse than a cost already measured, so the best (cost, index) pair is
    identical to an exhaustive evaluation whenever the bounds are valid.

    ``batch=True`` scores the whole wave through one vectorized engine
    pass (see :func:`_race_batch`); otherwise waves of up to ``workers``
    candidates are scored concurrently on one shared
    ``concurrent.futures`` pool — the caller may pass a ``pool`` to reuse
    across several races (successive-halving rungs), else one is created
    and shut down here.
    """
    if batch:
        return _race_batch(candidates, objective, prune=prune, fidelity=fidelity)
    evals = [Evaluation(plan=plan, fidelity=fidelity) for plan in candidates]
    resolved: List[Optional[ResolvedPlan]] = [None] * len(evals)
    if prune:
        for i, ev in enumerate(evals):
            try:
                resolved[i] = resolve(ev.plan)
                bound = objective.bound(resolved[i])
            except Exception:
                bound = None
            ev.bound = None if bound is None else objective.cost(bound)
    # Most promising first; unbounded candidates go first (they can never
    # be pruned, and evaluating them early tightens the incumbent).
    order = sorted(
        range(len(evals)),
        key=lambda i: (evals[i].bound is not None, evals[i].bound or 0.0, i),
    )
    own_pool = pool is None
    if own_pool:
        pool = _make_pool(workers, executor, len(candidates))
    try:
        best_cost = float("inf")
        # Without pruning there is no incumbent to tighten between waves,
        # so the whole set goes out as one chunked map.
        wave = max(1, workers) if prune else max(1, len(order))
        score_fn = partial(_score_one, objective)
        cursor = 0
        while cursor < len(order):
            batch_ix: List[int] = []
            while cursor < len(order) and len(batch_ix) < wave:
                idx = order[cursor]
                cursor += 1
                if prune and evals[idx].bound is not None and evals[idx].bound > best_cost:
                    evals[idx].pruned = True
                    continue
                batch_ix.append(idx)
            if not batch_ix:
                continue
            if pool is not None and len(batch_ix) > 1:
                scores = list(
                    pool.map(
                        score_fn,
                        [evals[i].plan for i in batch_ix],
                        chunksize=max(1, -(-len(batch_ix) // max(1, workers))),
                    )
                )
            else:
                scores = [
                    _score_resolved(evals[i].plan, resolved[i], objective)
                    for i in batch_ix
                ]
            for idx, (score, error) in zip(batch_ix, scores):
                ev = evals[idx]
                ev.score, ev.error = score, error
                if score is not None:
                    ev.cost = objective.cost(score)
                    if ev.cost < best_cost:
                        best_cost = ev.cost
    finally:
        if own_pool and pool is not None:
            pool.shutdown()
    return evals


def _best_index(evals: Sequence[Evaluation]) -> int:
    """Index of the winning evaluation (lowest cost, earliest on ties)."""
    scored = [i for i, ev in enumerate(evals) if ev.score is not None]
    if not scored:
        raise RuntimeError(
            "no candidate could be evaluated; first error: "
            + next((ev.error for ev in evals if ev.error), "none recorded")
        )
    return min(scored, key=lambda i: (evals[i].cost, i))


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
def _use_batch(batch: Optional[bool], objective: Objective) -> bool:
    """Resolve the ``batch`` tri-state against the objective's capability.

    ``None`` (default) turns batching on exactly when the objective is
    simulator-backed (it advertises a
    :attr:`~repro.tuning.objectives.Objective.batch_key`); ``False``
    forces the per-candidate path; ``True`` requests batching but still
    falls back per-candidate for objectives the batch layer cannot score.
    """
    return batch is not False and objective.batch_key is not None


@dataclass(frozen=True)
class GridSearch:
    """Exhaustive sweep with optional analytic pruning."""

    name: str = field(default="grid", init=False)
    prune: bool = True

    def run(
        self,
        candidates: Sequence[SvdPlan],
        objective: Objective,
        *,
        workers: int = 1,
        executor: str = "process",
        batch: Optional[bool] = None,
    ) -> List[Evaluation]:
        return _race(
            candidates,
            objective,
            workers=workers,
            executor=executor,
            prune=self.prune,
            batch=_use_batch(batch, objective),
        )


@dataclass(frozen=True)
class SuccessiveHalving:
    """Multi-fidelity racing: score everyone small, promote the top 1/eta.

    Fidelity is the problem size: rung ``r`` scores the surviving
    candidates on the base problem scaled down by ``2^(rungs - 1 - r)``
    (never below ``min_tile_multiple`` times the largest candidate tile, so
    every candidate keeps a meaningful tile grid); the last rung always
    runs at full size.
    """

    name: str = field(default="halving", init=False)
    eta: int = 2
    min_tile_multiple: int = 2
    prune: bool = True

    def __post_init__(self) -> None:
        if self.eta < 2:
            raise ValueError(f"eta must be >= 2, got {self.eta}")

    def _fidelities(
        self, m: int, n: int, max_tile: int, n_candidates: int
    ) -> List[Tuple[int, int]]:
        floor = max(self.min_tile_multiple * max_tile, 2)
        rungs: List[Tuple[int, int]] = [(m, n)]
        # One rung per halving of the candidate set, while the scaled
        # problem still exercises every tile size.
        survivors = n_candidates
        scale = 2
        while survivors > self.eta and min(m, n) // scale >= floor:
            rungs.append((m // scale, max(n // scale, 1)))
            survivors = -(-survivors // self.eta)
            scale *= 2
        rungs.reverse()
        return rungs

    def run(
        self,
        candidates: Sequence[SvdPlan],
        objective: Objective,
        *,
        workers: int = 1,
        executor: str = "process",
        batch: Optional[bool] = None,
    ) -> List[Evaluation]:
        max_tile = max(
            plan.tile_size for plan in candidates if isinstance(plan.tile_size, int)
        )
        base = candidates[0]
        fidelities = self._fidelities(base.m, base.n, max_tile, len(candidates))
        alive = list(range(len(candidates)))
        all_evals: List[Evaluation] = []
        use_batch = _use_batch(batch, objective)
        # One pool for all rungs: spawning worker processes per rung costs
        # more than most rungs' actual scoring.  Batch mode needs none.
        pool = None if use_batch else _make_pool(workers, executor, len(candidates))
        try:
            for rung, (fm, fn) in enumerate(fidelities):
                at_full = (fm, fn) == (base.m, base.n)
                scaled = [
                    candidates[i] if at_full else candidates[i].with_(m=fm, n=fn)
                    for i in alive
                ]
                evals = _race(
                    scaled,
                    objective,
                    workers=workers,
                    executor=executor,
                    # Bounds are only proven against costs of the same fidelity,
                    # so pruning stays rung-local (and therefore safe).
                    prune=self.prune,
                    fidelity=None if at_full else (fm, fn),
                    batch=use_batch,
                    pool=pool,
                )
                # Record against the original (full-size) candidate plans.
                for local, i in enumerate(alive):
                    evals[local].plan = candidates[i]
                    all_evals.append(evals[local])
                if rung == len(fidelities) - 1:
                    break
                ranked = sorted(
                    (local for local, ev in enumerate(evals) if ev.score is not None),
                    key=lambda local: (evals[local].cost, local),
                )
                keep = max(1, -(-len(alive) // self.eta))
                alive = [alive[local] for local in ranked[:keep]]
        finally:
            if pool is not None:
                pool.shutdown()
        return all_evals


STRATEGIES = {"grid": GridSearch, "halving": SuccessiveHalving}


def get_strategy(strategy) -> Union[GridSearch, SuccessiveHalving]:
    """Coerce a name or instance to a strategy."""
    if isinstance(strategy, (GridSearch, SuccessiveHalving)):
        return strategy
    try:
        return STRATEGIES[str(strategy).strip().lower()]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; available: {sorted(STRATEGIES)}"
        ) from None


# --------------------------------------------------------------------------- #
# The tuner
# --------------------------------------------------------------------------- #
@dataclass
class TuningResult:
    """Outcome of one :func:`tune` call."""

    best_plan: SvdPlan
    best_score: float
    objective: str
    direction: str
    strategy: str
    evaluations: List[Evaluation]
    n_candidates: int
    n_evaluated: int
    n_pruned: int
    elapsed_seconds: float
    from_cache: bool = False
    cache_path: Optional[str] = None

    def rows(self) -> List[Dict[str, object]]:
        """Per-candidate rows (for tables / ``--json``), winner first flag."""
        best_key = _plan_overrides(self.best_plan)
        rows = []
        for ev in self.evaluations:
            row = ev.to_row()
            row["best"] = (
                not self.from_cache
                and ev.fidelity is None
                and _plan_overrides(ev.plan) == best_key
            )
            rows.append(row)
        return rows

    def summary(self) -> str:
        best = _plan_overrides(self.best_plan)
        lines = [
            f"objective      : {self.objective} ({self.direction})",
            f"strategy       : {self.strategy}"
            + (" [cache hit]" if self.from_cache else ""),
            f"candidates     : {self.n_candidates} "
            f"({self.n_evaluated} evaluated, {self.n_pruned} pruned)",
            f"best score     : {self.best_score:.6g}",
            f"best tile size : {best['tile_size']}",
            f"best tree      : {best['tree']}",
            f"best variant   : {best['variant']}",
        ]
        if best["grid"] is not None:
            lines.append(f"best grid      : {best['grid'][0]}x{best['grid'][1]}")
        if best["inner_block"] is not None:
            lines.append(f"inner block    : {best['inner_block']}")
        lines.append(f"elapsed        : {self.elapsed_seconds:.2f}s")
        if self.cache_path:
            lines.append(f"plan cache     : {self.cache_path}")
        return "\n".join(lines)


def _plan_overrides(plan: SvdPlan) -> Dict[str, object]:
    """The tuned parameters of ``plan``, as a JSON-friendly dict."""
    config = plan.config if plan.config is not None else default_config
    return {
        "tile_size": plan.tile_size,
        "inner_block": config.inner_block,
        "tree": tree_display_name(plan.tree),
        "variant": plan.variant,
        "grid": list(plan.grid) if plan.grid else None,
    }


def _apply_overrides(base: SvdPlan, overrides: Dict[str, object]) -> SvdPlan:
    """Rebuild a tuned plan from cached parameter overrides."""
    config = base.config if base.config is not None else default_config
    grid = overrides.get("grid")
    tree = overrides["tree"]
    if not isinstance(base.tree, (str, type(None))):
        # An explicit tree instance can only appear as a pinned dimension;
        # its cached display name is not a registry key, so keep the object.
        tree = base.tree
    return base.with_(
        tile_size=int(overrides["tile_size"]),
        tree=tree,
        variant=overrides["variant"],
        grid=tuple(grid) if grid else None,
        config=config.with_(inner_block=int(overrides["inner_block"])),
    )


def _tune_cache_key(
    base: SvdPlan, space: SearchSpace, objective: Objective, strategy_name: str
) -> str:
    config = base.config if base.config is not None else default_config
    key = {
        "m": base.m,
        "n": base.n,
        "stage": base.stage,
        "machine": base.machine,
        "n_nodes": base.n_nodes,
        "n_cores": base.n_cores,
        "policy": base.policy,
        "network": base.network,
        "auto_gamma": config.auto_gamma,
        "objective": objective.name,
        "strategy": strategy_name,
        "space": space.fingerprint(base),
    }
    if base.scenario is not None:
        # Scenario-aware scores depend on the perturbation models, the
        # draw count and the Monte-Carlo seed; fold them in so cached
        # robust-makespan answers never leak across scenarios.
        key["scenario"] = repr(base.scenario.fingerprint())
        key["draws"] = base.draws
        key["mc_seed"] = base.seed
    return cache_key(key)


def tune(
    plan: SvdPlan,
    *,
    space: Optional[SearchSpace] = None,
    objective: Union[str, Objective] = "makespan",
    strategy: Union[str, GridSearch, SuccessiveHalving] = "grid",
    workers: int = 1,
    cache: Union[PlanCache, bool, None] = True,
    force: bool = False,
    executor: str = "process",
    batch: Optional[bool] = None,
) -> TuningResult:
    """Search the plan space around ``plan`` and return the best candidate.

    Parameters
    ----------
    plan:
        The problem to tune (shape, stage, machine).  Fields the space
        searches (tile size, tree, variant, grid, inner block) are treated
        as free; ``tile_size="auto"`` is accepted and means the same as
        leaving it unset.
    space:
        The :class:`SearchSpace` to explore (default: the paper-shaped
        default space for this problem).
    objective:
        Objective name or instance (see
        :data:`repro.tuning.objectives.OBJECTIVES`).
    strategy:
        ``"grid"`` (exhaustive + pruning) or ``"halving"`` (successive
        halving), or a configured strategy instance.
    workers:
        Parallel evaluation width; ``1`` evaluates serially, larger values
        fan candidates out over a ``concurrent.futures`` pool.
    cache:
        ``True`` (default) uses the persistent default cache, ``False`` /
        ``None`` disables caching, or pass an explicit
        :class:`~repro.tuning.cache.PlanCache`.
    force:
        Re-run the search even on a cache hit (and refresh the entry).
    executor:
        ``"process"`` (default; real parallelism for the pure-Python
        simulator) or ``"thread"``.
    batch:
        ``None`` (default) batches candidate waves through one vectorized
        engine pass (:mod:`repro.runtime.batch`) whenever the objective is
        simulator-backed — scores stay bit-identical to per-candidate
        evaluation while the shared setup, analytic pruning and schedule
        deduplication make large sweeps several times faster.  ``False``
        forces the per-candidate path (e.g. to fan out over a process
        pool); ``True`` requests batching, falling back per-candidate for
        objectives the batch layer cannot score.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if executor not in ("process", "thread"):
        raise ValueError(f"executor must be 'process' or 'thread', got {executor!r}")
    objective = get_objective(objective)
    objective.check_stage(plan.stage)
    strategy = get_strategy(strategy)
    base = plan.with_(tile_size=None) if plan.tile_size == "auto" else plan
    # Candidates are scored matrix-free (the analytic backends only need the
    # shape), but the *returned* plan must still carry the caller's data —
    # densified, so the tuned tile size can re-tile it at execution.
    matrix = base.matrix
    if isinstance(matrix, TiledMatrix):
        matrix = matrix.to_dense()
    if matrix is not None:
        base = base.with_(matrix=matrix)
    space = space if space is not None else SearchSpace()

    store: Optional[PlanCache]
    if cache is True:
        store = PlanCache()
    elif cache in (False, None):
        store = None
    else:
        store = cache

    key = None
    if store is not None:
        key = _tune_cache_key(base, space, objective, strategy.name)
        record = None if force else store.get(key)
        if record is not None:
            return TuningResult(
                best_plan=_apply_overrides(base, record["overrides"]),
                best_score=float(record["score"]),
                objective=objective.name,
                direction=objective.direction,
                strategy=strategy.name,
                evaluations=[],
                n_candidates=int(record.get("n_candidates", 0)),
                n_evaluated=0,
                n_pruned=0,
                elapsed_seconds=0.0,
                from_cache=True,
                cache_path=str(store.path),
            )

    start = time.perf_counter()
    candidates = space.candidates(base)
    evaluations = strategy.run(
        candidates, objective, workers=workers, executor=executor, batch=batch
    )
    # Successive halving re-scores survivors at several fidelities; the
    # winner is picked among full-fidelity evaluations only.
    final = [ev for ev in evaluations if ev.fidelity is None]
    best = final[_best_index(final)]
    elapsed = time.perf_counter() - start
    best_plan = best.plan if matrix is None else best.plan.with_(matrix=matrix)
    result = TuningResult(
        best_plan=best_plan,
        best_score=float(best.score),
        objective=objective.name,
        direction=objective.direction,
        strategy=strategy.name,
        evaluations=evaluations,
        n_candidates=len(candidates),
        n_evaluated=sum(1 for ev in evaluations if ev.score is not None),
        n_pruned=sum(1 for ev in evaluations if ev.pruned),
        elapsed_seconds=elapsed,
        cache_path=str(store.path) if store is not None else None,
    )
    if store is not None:
        store.put(
            key,
            {
                "overrides": _plan_overrides(best.plan),
                "score": result.best_score,
                "objective": objective.name,
                "direction": objective.direction,
                "strategy": strategy.name,
                "n_candidates": result.n_candidates,
                "n_evaluated": result.n_evaluated,
                "n_pruned": result.n_pruned,
                "elapsed_seconds": round(elapsed, 4),
                "problem": {
                    "m": base.m,
                    "n": base.n,
                    "stage": base.stage,
                    "machine": base.machine,
                    "n_nodes": base.n_nodes,
                    "n_cores": base.n_cores,
                },
            },
        )
    return result


def resolve_auto_tile_size(plan: SvdPlan, config=None) -> int:
    """Pick the tile size for a ``tile_size="auto"`` plan (cached).

    Tunes the tile-size dimension alone — tree, variant, grid and inner
    block stay as the plan says — against the ``makespan`` objective, so
    ``SvdPlan(tile_size="auto")`` resolves to the simulator's best ``nb``
    for this problem and machine.  The persistent plan cache makes every
    resolution after the first an O(1) lookup.
    """
    base = plan.with_(tile_size=None)
    if config is not None:
        base = base.with_(config=config)
    if base.stage == "gesvd":
        # The analytic backends do not model vector accumulation; the
        # GE2VAL pipeline is the closest scored proxy.
        base = base.with_(stage="ge2val")
    space = SearchSpace(
        trees=None,  # pin the plan's own tree / variant / grid
        variants=None,
        grids=(base.grid,),
    )
    result = tune(base, space=space, objective="makespan", strategy="grid")
    return int(result.best_plan.tile_size)
