"""Persistent JSON cache of tuning outcomes.

Tuning a plan costs many simulator runs; the answer — "for this problem
shape, machine, objective and search space, use these parameters" — is tiny
and stable.  :class:`PlanCache` persists that answer in one JSON file so
repeated calls (a second ``repro tune``, or every
``SvdPlan(tile_size="auto")`` resolution after the first) are O(1) lookups.

The cache file lives at ``~/.cache/repro/plan_cache.json`` by default; the
``REPRO_TUNE_CACHE`` environment variable overrides the location (tests and
CI point it at a temporary file).  Delete the file — or run
``repro tune --clear-cache`` — to retune from scratch.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Environment variable overriding the default cache location.
CACHE_ENV_VAR = "REPRO_TUNE_CACHE"

#: Bumped whenever the cached record layout changes; old files are ignored.
CACHE_VERSION = 1


def default_cache_path() -> Path:
    """The cache file location (honouring :data:`CACHE_ENV_VAR`)."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "plan_cache.json"


def cache_key(fields: Dict[str, object]) -> str:
    """Deterministic key for one (problem, machine, objective, space) tuple."""
    payload = json.dumps({k: str(v) for k, v in fields.items()}, sort_keys=True)
    return hashlib.sha1(payload.encode()).hexdigest()


class PlanCache:
    """A small persistent key -> record store backed by one JSON file.

    Records are plain dicts (the tuner stores the winning parameter
    overrides plus provenance).  Writes are atomic (temp file + rename) so
    readers never see a torn file, and mutations run under an exclusive
    ``fcntl`` lock on a sidecar file with a fresh read-merge-write cycle,
    so concurrent tuning *processes* cannot lose each other's entries to
    the read-modify-write race.  A corrupt or foreign-version file is
    treated as empty rather than raised on.
    """

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.path = Path(path) if path is not None else default_cache_path()
        self._entries: Optional[Dict[str, dict]] = None

    # ------------------------------------------------------------------ #
    # File handling
    # ------------------------------------------------------------------ #
    def _read_file(self) -> Dict[str, dict]:
        """Read the entries straight from disk (no in-process memo)."""
        entries: Dict[str, dict] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            if isinstance(payload, dict) and payload.get("version") == CACHE_VERSION:
                stored = payload.get("entries", {})
                if isinstance(stored, dict):
                    entries = stored
        except (OSError, ValueError):
            pass
        return entries

    def _load(self) -> Dict[str, dict]:
        if self._entries is None:
            self._entries = self._read_file()
        return self._entries

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive cross-process lock for mutations (sidecar file).

        The lock file sits next to the cache (``<name>.lock``) so the
        atomic-rename of the cache itself never invalidates the lock fd.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = self.path.with_name(self.path.name + ".lock")
        with open(lock_path, "a+", encoding="utf-8") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def _save(self) -> None:
        entries = self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION, "entries": entries}
        fd, tmp = tempfile.mkstemp(
            prefix=self.path.name + ".", dir=str(self.path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # Store API
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._load())

    def get(self, key: str) -> Optional[dict]:
        """The cached record under ``key``, or ``None``."""
        from repro.obs.metrics import REGISTRY

        record = self._load().get(key)
        REGISTRY.inc("plan_cache.hits" if record is not None else "plan_cache.misses")
        return record

    def put(self, key: str, record: dict) -> None:
        """Store ``record`` under ``key`` (stamped) and persist.

        Runs a read-merge-write cycle under the cross-process lock:
        entries written by concurrent processes since our last read are
        merged in rather than overwritten.
        """
        record = dict(record)
        record.setdefault("cached_at", time.strftime("%Y-%m-%dT%H:%M:%S"))
        with self._locked():
            entries = self._read_file()
            entries[key] = record
            self._entries = entries
            self._save()

    def clear(self) -> int:
        """Drop every entry (and the file); returns the number removed."""
        with self._locked():
            n = len(self._read_file())
            self._entries = {}
            try:
                os.unlink(self.path)
            except OSError:
                pass
        return n
