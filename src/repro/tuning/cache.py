"""Persistent JSON cache of tuning outcomes.

Tuning a plan costs many simulator runs; the answer — "for this problem
shape, machine, objective and search space, use these parameters" — is tiny
and stable.  :class:`PlanCache` persists that answer in one JSON file so
repeated calls (a second ``repro tune``, or every
``SvdPlan(tile_size="auto")`` resolution after the first) are O(1) lookups.

The cache file lives at ``~/.cache/repro/plan_cache.json`` by default; the
``REPRO_TUNE_CACHE`` environment variable overrides the location (tests and
CI point it at a temporary file).  Delete the file — or run
``repro tune --clear-cache`` — to retune from scratch.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

#: Environment variable overriding the default cache location.
CACHE_ENV_VAR = "REPRO_TUNE_CACHE"

#: Bumped whenever the cached record layout changes; old files are ignored.
CACHE_VERSION = 1


def default_cache_path() -> Path:
    """The cache file location (honouring :data:`CACHE_ENV_VAR`)."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "plan_cache.json"


def cache_key(fields: Dict[str, object]) -> str:
    """Deterministic key for one (problem, machine, objective, space) tuple."""
    payload = json.dumps({k: str(v) for k, v in fields.items()}, sort_keys=True)
    return hashlib.sha1(payload.encode()).hexdigest()


class PlanCache:
    """A small persistent key -> record store backed by one JSON file.

    Records are plain dicts (the tuner stores the winning parameter
    overrides plus provenance).  Writes are atomic (temp file + rename) so
    concurrent tuning runs cannot corrupt the file; a corrupt or
    foreign-version file is treated as empty rather than raised on.
    """

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.path = Path(path) if path is not None else default_cache_path()
        self._entries: Optional[Dict[str, dict]] = None

    # ------------------------------------------------------------------ #
    # File handling
    # ------------------------------------------------------------------ #
    def _load(self) -> Dict[str, dict]:
        if self._entries is not None:
            return self._entries
        entries: Dict[str, dict] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            if isinstance(payload, dict) and payload.get("version") == CACHE_VERSION:
                stored = payload.get("entries", {})
                if isinstance(stored, dict):
                    entries = stored
        except (OSError, ValueError):
            pass
        self._entries = entries
        return entries

    def _save(self) -> None:
        entries = self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION, "entries": entries}
        fd, tmp = tempfile.mkstemp(
            prefix=self.path.name + ".", dir=str(self.path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # Store API
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._load())

    def get(self, key: str) -> Optional[dict]:
        """The cached record under ``key``, or ``None``."""
        from repro.obs.metrics import REGISTRY

        record = self._load().get(key)
        REGISTRY.inc("plan_cache.hits" if record is not None else "plan_cache.misses")
        return record

    def put(self, key: str, record: dict) -> None:
        """Store ``record`` under ``key`` (stamped) and persist."""
        record = dict(record)
        record.setdefault("cached_at", time.strftime("%Y-%m-%dT%H:%M:%S"))
        self._load()[key] = record
        self._save()

    def clear(self) -> int:
        """Drop every entry (and the file); returns the number removed."""
        n = len(self._load())
        self._entries = {}
        try:
            os.unlink(self.path)
        except OSError:
            pass
        return n
