"""Autotuning: search the plan space, remember what wins.

The paper's headline practical result is that GE2VAL performance hinges on
tuned parameters — tile size ``nb = 160``, inner block ``ib = 32``, the
reduction tree, the Chan crossover and the process-grid shape.  This
subsystem finds those parameters instead of asking for them:

>>> from repro.api import SvdPlan
>>> from repro.tuning import tune
>>> result = tune(SvdPlan(m=2000, n=2000, n_cores=24), workers=4)
>>> result.best_plan.tile_size          # doctest: +SKIP
160

* :class:`SearchSpace` declares the dimensions (tile sizes, inner blocks,
  trees, variants, process grids);
* :mod:`~repro.tuning.objectives` scores candidates through the simulator,
  the critical-path engine or the communication-volume analysis;
* :class:`GridSearch` / :class:`SuccessiveHalving` drive the sweep, in
  parallel (``concurrent.futures``) and with analytic-model pruning;
* :class:`PlanCache` persists the winners so repeated calls — including
  every ``SvdPlan(tile_size="auto")`` resolution — are O(1).
"""

from repro.tuning.cache import CACHE_ENV_VAR, PlanCache, default_cache_path
from repro.tuning.objectives import OBJECTIVES, Objective, get_objective
from repro.tuning.search import (
    STRATEGIES,
    Evaluation,
    GridSearch,
    SuccessiveHalving,
    TuningResult,
    get_strategy,
    resolve_auto_tile_size,
    tune,
)
from repro.tuning.space import SearchSpace, default_tile_sizes, divisor_grids

__all__ = [
    "CACHE_ENV_VAR",
    "OBJECTIVES",
    "STRATEGIES",
    "Evaluation",
    "GridSearch",
    "Objective",
    "PlanCache",
    "SearchSpace",
    "SuccessiveHalving",
    "TuningResult",
    "default_cache_path",
    "default_tile_sizes",
    "divisor_grids",
    "get_objective",
    "get_strategy",
    "resolve_auto_tile_size",
    "tune",
]
