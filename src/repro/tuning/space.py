"""Declarative search spaces over :class:`~repro.api.plan.SvdPlan`.

A :class:`SearchSpace` names the tunable dimensions of the paper's
Section-VI setup — tile size ``nb``, inner block ``ib``, reduction tree,
BIDIAG / R-BIDIAG variant and process-grid shape — as plain value lists.
:meth:`SearchSpace.candidates` expands the space against a base plan into
the concrete :class:`~repro.api.plan.SvdPlan` grid that the search
strategies of :mod:`repro.tuning.search` evaluate.

The defaults mirror what the paper actually tunes: a handful of tile sizes
around the config default, the four shared-memory trees, both variants, and
(on several nodes) every divisor-pair process grid.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.plan import VARIANTS, SvdPlan
from repro.config import Config, default_config
from repro.trees import TREE_REGISTRY

#: Tree names the default space sweeps (the four trees of Figure 2).
DEFAULT_TREES: Tuple[str, ...] = ("flatts", "flattt", "greedy", "auto")

#: Multipliers applied to the config-default tile size to build the default
#: ``nb`` candidates (the paper's Section VI-B sweep shape).
DEFAULT_TILE_FACTORS: Tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0)


def default_tile_sizes(m: int, n: int, config: Optional[Config] = None) -> Tuple[int, ...]:
    """Default ``nb`` candidates for an ``m x n`` problem.

    Scales :data:`DEFAULT_TILE_FACTORS` by the config-driven default tile
    size and keeps only values that leave at least a 2x2 tile grid (the
    reduction trees are meaningless on a single tile column).
    """
    from repro.api.resolver import default_tile_size

    base = default_tile_size(m, n, config)
    ceiling = max(1, min(m, n) // 2)
    sizes = sorted({min(max(1, round(base * f)), ceiling) for f in DEFAULT_TILE_FACTORS})
    return tuple(sizes)


def divisor_grids(n_nodes: int) -> Tuple[Tuple[int, int], ...]:
    """All ``(rows, cols)`` process-grid shapes covering ``n_nodes`` nodes.

    For prime node counts this degenerates to the two flat shapes
    ``1 x nodes`` and ``nodes x 1``.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    return tuple(
        (r, n_nodes // r) for r in range(1, n_nodes + 1) if n_nodes % r == 0
    )


@dataclass(frozen=True)
class SearchSpace:
    """The tunable dimensions of one autotuning run.

    Every dimension is a sequence of values; ``None`` means "use the
    problem-derived default" (computed against the base plan in
    :meth:`candidates`).  A single-value dimension pins that parameter.

    Parameters
    ----------
    tile_sizes:
        Tile sizes ``nb`` to try (default: :func:`default_tile_sizes`).
    inner_blocks:
        Inner blocks ``ib`` to try (default: just the config value — the
        ``ib`` dimension only matters to the performance model, so it is
        opt-in).
    trees:
        Reduction-tree names (default: :data:`DEFAULT_TREES`).
    variants:
        Algorithm variants; ``"auto"`` entries resolve through the Chan
        crossover (default: ``("bidiag", "rbidiag")``).
    grids:
        Process-grid shapes ``(rows, cols)``; only shapes covering the base
        plan's ``n_nodes`` are kept, and a ``None`` entry means the
        resolver's default grid for the tile shape (default:
        :func:`divisor_grids` on several nodes, just the resolver default
        on one).

    ``trees=None`` / ``variants=None`` pin the dimension to the base plan's
    own value (useful to tune one parameter in isolation).
    """

    tile_sizes: Optional[Sequence[int]] = None
    inner_blocks: Optional[Sequence[int]] = None
    trees: Optional[Sequence[str]] = field(default=DEFAULT_TREES)
    variants: Optional[Sequence[str]] = ("bidiag", "rbidiag")
    grids: Optional[Sequence[Optional[Tuple[int, int]]]] = None

    def __post_init__(self) -> None:
        for name in ("tile_sizes", "inner_blocks"):
            values = getattr(self, name)
            if values is not None:
                values = tuple(int(v) for v in values)
                if not values or any(v < 1 for v in values):
                    raise ValueError(f"{name} must be a non-empty sequence of ints >= 1")
                object.__setattr__(self, name, values)
        if self.trees is not None:
            trees = tuple(str(t).strip().lower() for t in self.trees)
            unknown = [t for t in trees if t not in TREE_REGISTRY]
            if not trees or unknown:
                raise ValueError(
                    f"unknown tree(s) {unknown}; available: {sorted(TREE_REGISTRY)}"
                )
            object.__setattr__(self, "trees", trees)
        if self.variants is not None:
            variants = tuple(str(v).strip().lower() for v in self.variants)
            unknown = [v for v in variants if v not in VARIANTS]
            if not variants or unknown:
                raise ValueError(f"unknown variant(s) {unknown}; choose from {VARIANTS}")
            object.__setattr__(self, "variants", variants)
        if self.grids is not None:
            grids = tuple(
                g if g is None else (int(g[0]), int(g[1])) for g in self.grids
            )
            if not grids or any(g is not None and (g[0] < 1 or g[1] < 1) for g in grids):
                raise ValueError("grids must be a non-empty sequence of (rows, cols) pairs")
            object.__setattr__(self, "grids", grids)

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def dimensions(self, base: SvdPlan) -> Dict[str, Tuple[object, ...]]:
        """The concrete value list of every dimension, for ``base``."""
        config = base.config if base.config is not None else default_config
        tile_sizes = self.tile_sizes
        if tile_sizes is None:
            tile_sizes = default_tile_sizes(base.m, base.n, config)
        inner_blocks = self.inner_blocks
        if inner_blocks is None:
            inner_blocks = (config.inner_block,)
        grids: Sequence[Optional[Tuple[int, int]]]
        if self.grids is None:
            grids = divisor_grids(base.n_nodes) if base.n_nodes > 1 else (None,)
        else:
            grids = tuple(
                g for g in self.grids if g is None or g[0] * g[1] == base.n_nodes
            )
            if not grids:
                raise ValueError(
                    f"no grid shape in {list(self.grids)} covers n_nodes={base.n_nodes}"
                )
        return {
            "tile_size": tuple(tile_sizes),
            "inner_block": tuple(inner_blocks),
            "tree": tuple(self.trees) if self.trees is not None else (base.tree,),
            "variant": tuple(self.variants) if self.variants is not None else (base.variant,),
            "grid": tuple(grids),
        }

    def size(self, base: SvdPlan) -> int:
        """Number of candidate plans the space expands to for ``base``."""
        dims = self.dimensions(base)
        total = 1
        for values in dims.values():
            total *= len(values)
        return total

    def candidates(self, base: SvdPlan) -> List[SvdPlan]:
        """Expand the space into concrete plans derived from ``base``.

        The base plan's explicit matrix (if any) is dropped — tuning scores
        candidates with the simulator / DAG lenses, which only need the
        shape — and duplicates (e.g. a variant list that collapses under
        the Chan crossover) are removed while preserving order.
        """
        from repro.api.resolver import resolve_variant

        config = base.config if base.config is not None else default_config
        if base.matrix is not None:
            base = base.with_(matrix=None, m=base.m, n=base.n)
        dims = self.dimensions(base)
        plans: List[SvdPlan] = []
        seen = set()
        for nb, ib, tree, variant, grid in itertools.product(
            dims["tile_size"],
            dims["inner_block"],
            dims["tree"],
            dims["variant"],
            dims["grid"],
        ):
            plan = base.with_(
                tile_size=nb,
                tree=tree,
                variant=variant,
                grid=grid,
                config=config.with_(inner_block=ib),
            )
            key = (nb, ib, str(tree), resolve_variant(plan.variant, base.m, base.n), plan.grid)
            if key in seen:
                continue
            seen.add(key)
            plans.append(plan)
        return plans

    # ------------------------------------------------------------------ #
    # Identity (for the plan cache)
    # ------------------------------------------------------------------ #
    def fingerprint(self, base: SvdPlan) -> str:
        """Stable hash of the concrete dimensions for ``base``.

        Two tuning runs share a cache entry only if their expanded spaces
        are identical.
        """
        dims = self.dimensions(base)
        payload = json.dumps(
            {k: [str(v) for v in vs] for k, vs in dims.items()}, sort_keys=True
        )
        return hashlib.sha1(payload.encode()).hexdigest()[:16]
