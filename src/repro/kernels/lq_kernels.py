"""LQ tile kernels.

These are the exact column-wise counterparts of the QR kernels: where a QR
step combines two tile *rows* to zero a tile below the diagonal, an LQ step
combines two tile *columns* to zero a tile to the right of the
superdiagonal.  They are implemented through the transpose duality
``A = L Q  <=>  A^T = Q^T L^T`` so the numerics are shared with
:mod:`repro.kernels.qr_kernels` — an LQ kernel is a QR kernel on the
transposed tiles, with the orthogonal factor applied from the right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.kernels.householder import apply_q_right, qr_factor


@dataclass(frozen=True)
class LQReflector:
    """Compact-WY representation of the row-space reflectors of an LQ kernel.

    The reflectors are stored exactly as their QR-on-the-transpose
    counterparts: ``v`` has one column per Householder vector (each vector
    acts on matrix *columns*), and ``split`` is the number of columns of the
    *left* tile for the two-tile kernels.
    """

    v: np.ndarray
    t: np.ndarray
    split: int
    kind: str


def gelqt(a: np.ndarray) -> Tuple[np.ndarray, LQReflector]:
    """Factor tile ``A`` into ``L Q`` (LQ panel kernel).

    Returns the lower-trapezoidal ``L`` (same shape as ``A``) and the
    reflector to be passed to :func:`unmlq`.
    """
    v, t, r = qr_factor(a.T)
    return r.T, LQReflector(v=v, t=t, split=0, kind="GELQT")


def unmlq(refl: LQReflector, c: np.ndarray) -> np.ndarray:
    """Apply ``Q^T`` of a :func:`gelqt` factorization to tile ``C`` from the right."""
    if refl.kind != "GELQT":
        raise ValueError(f"unmlq expects a GELQT reflector, got {refl.kind}")
    if c.shape[1] != refl.v.shape[0]:
        raise ValueError(
            f"column mismatch: C has {c.shape[1]} columns, reflector expects {refl.v.shape[0]}"
        )
    # A = L Q with Q = Qqr^T (Qqr from the QR of A^T); the trailing update is
    # C := C Q^T = C Qqr = C (I - V T V^T).
    return apply_q_right(refl.v, refl.t, c)


def _stacked_lq(left: np.ndarray, right: np.ndarray, kind: str) -> Tuple[
    np.ndarray, np.ndarray, LQReflector
]:
    """LQ of ``[left | right]`` side by side; shared by TSLQT/TTLQT."""
    if left.shape[0] != right.shape[0]:
        raise ValueError(
            f"row mismatch: left has {left.shape[0]} rows, right has {right.shape[0]}"
        )
    stacked_t = np.vstack([left.T, right.T])
    v, t, r = qr_factor(stacked_t)
    split = left.shape[1]
    new_left = r[:split, :].T
    new_right = np.zeros_like(right)
    return new_left, new_right, LQReflector(v=v, t=t, split=split, kind=kind)


def tslqt(l_left: np.ndarray, a_right: np.ndarray) -> Tuple[np.ndarray, np.ndarray, LQReflector]:
    """Zero the square tile ``a_right`` using the lower triangle ``l_left``."""
    return _stacked_lq(l_left, a_right, kind="TSLQT")


def ttlqt(l_left: np.ndarray, l_right: np.ndarray) -> Tuple[np.ndarray, np.ndarray, LQReflector]:
    """Zero the *triangular* tile ``l_right`` using the lower triangle ``l_left``.

    Numerically identical to :func:`tslqt`; the TS/TT distinction only
    affects the cost model and the available parallelism.
    """
    return _stacked_lq(l_left, l_right, kind="TTLQT")


def _stacked_apply_right(refl: LQReflector, c_left: np.ndarray, c_right: np.ndarray) -> Tuple[
    np.ndarray, np.ndarray
]:
    if c_left.shape[1] != refl.split:
        raise ValueError(
            f"left tile has {c_left.shape[1]} columns but reflector was built with split={refl.split}"
        )
    if c_left.shape[1] + c_right.shape[1] != refl.v.shape[0]:
        raise ValueError(
            "stacked column count does not match the reflector "
            f"({c_left.shape[1]} + {c_right.shape[1]} != {refl.v.shape[0]})"
        )
    stacked = np.hstack([c_left, c_right])
    updated = apply_q_right(refl.v, refl.t, stacked)
    return updated[:, : refl.split], updated[:, refl.split :]


def tsmlq(refl: LQReflector, c_left: np.ndarray, c_right: np.ndarray) -> Tuple[
    np.ndarray, np.ndarray
]:
    """Apply the reflectors of a :func:`tslqt` to the tile pair ``(c_left, c_right)``."""
    if refl.kind != "TSLQT":
        raise ValueError(f"tsmlq expects a TSLQT reflector, got {refl.kind}")
    return _stacked_apply_right(refl, c_left, c_right)


def ttmlq(refl: LQReflector, c_left: np.ndarray, c_right: np.ndarray) -> Tuple[
    np.ndarray, np.ndarray
]:
    """Apply the reflectors of a :func:`ttlqt` to the tile pair ``(c_left, c_right)``."""
    if refl.kind != "TTLQT":
        raise ValueError(f"ttmlq expects a TTLQT reflector, got {refl.kind}")
    return _stacked_apply_right(refl, c_left, c_right)
