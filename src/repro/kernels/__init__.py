"""Numerically exact tile kernels (compact-WY Householder) and their cost model.

The QR kernels follow the PLASMA ``core_blas`` naming (Table I of the paper):

===========  =====================================================
``GEQRT``    QR factorization of a single tile (panel kernel)
``UNMQR``    apply the GEQRT reflectors to a tile on the same row
``TSQRT``    QR of a triangle stacked on top of a square tile
``TSMQR``    apply the TSQRT reflectors to a pair of tiles
``TTQRT``    QR of a triangle stacked on top of a triangle
``TTMQR``    apply the TTQRT reflectors to a pair of tiles
===========  =====================================================

The LQ kernels (``GELQT`` / ``UNMLQ`` / ``TSLQT`` / ``TSMLQ`` / ``TTLQT`` /
``TTMLQ``) are the exact column-wise counterparts and are implemented through
the transpose duality ``LQ(A) == QR(A^T)^T``.
"""

from repro.kernels.householder import (
    householder_vector,
    build_t_factor,
    qr_factor,
    apply_q,
    apply_qt,
)
from repro.kernels.qr_kernels import (
    geqrt,
    unmqr,
    tsqrt,
    tsmqr,
    ttqrt,
    ttmqr,
    QRReflector,
)
from repro.kernels.lq_kernels import (
    gelqt,
    unmlq,
    tslqt,
    tsmlq,
    ttlqt,
    ttmlq,
    LQReflector,
)
from repro.kernels.costs import KERNEL_WEIGHTS, kernel_weight, kernel_flops, KernelName

__all__ = [
    "householder_vector",
    "build_t_factor",
    "qr_factor",
    "apply_q",
    "apply_qt",
    "geqrt",
    "unmqr",
    "tsqrt",
    "tsmqr",
    "ttqrt",
    "ttmqr",
    "QRReflector",
    "gelqt",
    "unmlq",
    "tslqt",
    "tsmlq",
    "ttlqt",
    "ttmlq",
    "LQReflector",
    "KERNEL_WEIGHTS",
    "kernel_weight",
    "kernel_flops",
    "KernelName",
]
