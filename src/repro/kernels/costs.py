"""Kernel cost model (Table I of the paper).

The unit of time is ``nb^3 / 3`` floating-point operations, where ``nb`` is
the tile size.  Table I of the paper gives the following weights:

====================  ======  ======================  ======
Panel kernel          weight  Update kernel           weight
====================  ======  ======================  ======
GEQRT (square→tri)       4    UNMQR                      6
TSQRT (sq w/ tri top)    6    TSMQR                     12
TTQRT (tri w/ tri top)   2    TTMQR                      6
====================  ======  ======================  ======

The LQ kernels have exactly the same costs as their QR counterparts.
These weights drive both the critical-path analysis (Section IV) and the
runtime simulator's kernel durations.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict


class KernelName(str, Enum):
    """All tile kernels used by the tiled algorithms."""

    GEQRT = "GEQRT"
    UNMQR = "UNMQR"
    TSQRT = "TSQRT"
    TSMQR = "TSMQR"
    TTQRT = "TTQRT"
    TTMQR = "TTMQR"
    GELQT = "GELQT"
    UNMLQ = "UNMLQ"
    TSLQT = "TSLQT"
    TSMLQ = "TSMLQ"
    TTLQT = "TTLQT"
    TTMLQ = "TTMLQ"

    @property
    def is_lq(self) -> bool:
        """Whether the kernel belongs to the LQ family."""
        return "LQ" in self.value or self.value == "GELQT"

    @property
    def is_panel(self) -> bool:
        """Whether the kernel is a panel (factorization) kernel."""
        return self.value in {
            "GEQRT",
            "TSQRT",
            "TTQRT",
            "GELQT",
            "TSLQT",
            "TTLQT",
        }

    @property
    def qr_equivalent(self) -> "KernelName":
        """The QR-family kernel with the same cost (identity for QR kernels)."""
        return _LQ_TO_QR.get(self, self)


_LQ_TO_QR: Dict[KernelName, KernelName] = {
    KernelName.GELQT: KernelName.GEQRT,
    KernelName.UNMLQ: KernelName.UNMQR,
    KernelName.TSLQT: KernelName.TSQRT,
    KernelName.TSMLQ: KernelName.TSMQR,
    KernelName.TTLQT: KernelName.TTQRT,
    KernelName.TTMLQ: KernelName.TTMQR,
}

#: Table I weights, in units of ``nb^3 / 3`` flops.
KERNEL_WEIGHTS: Dict[KernelName, int] = {
    KernelName.GEQRT: 4,
    KernelName.UNMQR: 6,
    KernelName.TSQRT: 6,
    KernelName.TSMQR: 12,
    KernelName.TTQRT: 2,
    KernelName.TTMQR: 6,
    KernelName.GELQT: 4,
    KernelName.UNMLQ: 6,
    KernelName.TSLQT: 6,
    KernelName.TSMLQ: 12,
    KernelName.TTLQT: 2,
    KernelName.TTMLQ: 6,
}

#: Kernels in enum-definition order.  Position in this tuple is the kernel's
#: dense integer *code*, used by the structure-of-arrays Program columns and
#: the machine duration tables so hot paths index flat arrays instead of
#: hashing enum members.  The order is stable across processes and hash
#: seeds (it is the class-body order of :class:`KernelName`).
KERNEL_LIST: tuple = tuple(KernelName)

#: Kernel -> dense code (index into :data:`KERNEL_LIST`).
KERNEL_CODES: Dict[KernelName, int] = {k: i for i, k in enumerate(KERNEL_LIST)}


#: Relative efficiency of each kernel compared to a GEMM of the same volume.
#: TS kernels are close to GEMM speed; TT kernels only reach a fraction of it
#: (the motivation for the AUTO tree, Section V).  The panel kernels are
#: partly Level-2 BLAS and slower still.  These factors only matter for the
#: performance simulator, never for critical paths or numerics.
KERNEL_EFFICIENCY: Dict[KernelName, float] = {
    KernelName.GEQRT: 0.50,
    KernelName.UNMQR: 0.85,
    KernelName.TSQRT: 0.55,
    KernelName.TSMQR: 0.90,
    KernelName.TTQRT: 0.40,
    KernelName.TTMQR: 0.55,
    KernelName.GELQT: 0.50,
    KernelName.UNMLQ: 0.85,
    KernelName.TSLQT: 0.55,
    KernelName.TSMLQ: 0.90,
    KernelName.TTLQT: 0.40,
    KernelName.TTMLQ: 0.55,
}


#: Tile size at which :data:`KERNEL_EFFICIENCY` was calibrated (the paper's
#: tuned ``nb``); :func:`tile_efficiency_factor` is 1.0 there.
REFERENCE_NB: int = 160

#: Controls how fast kernel efficiency degrades for small tiles: the factor
#: halves (relative to its asymptote) at ``nb = TILE_EFFICIENCY_NB_HALF``.
TILE_EFFICIENCY_NB_HALF: int = 160

#: Absolute ceiling on any kernel efficiency, however large the tile.
MAX_KERNEL_EFFICIENCY: float = 0.97


def tile_efficiency_factor(nb: int) -> float:
    """Tile-size dependence of kernel efficiency, normalised at ``nb = 160``.

    Tile kernels are built from inner-blocked Level-3 BLAS calls whose
    surface-to-volume ratio worsens as the tile shrinks; the paper states
    that "a large tile size will get a higher kernel efficiency" and that a
    small ``nb`` "decreases the efficiency of the kernels used in the
    GE2BND step" (Section VI-B).  We model that with a saturating curve
    ``nb / (nb + nb_half)`` rescaled so the factor is exactly 1 at the
    paper's tuned ``nb = 160``; per-kernel efficiencies are then clamped to
    :data:`MAX_KERNEL_EFFICIENCY`.
    """
    if nb < 1:
        raise ValueError(f"nb must be >= 1, got {nb}")
    raw = nb / (nb + TILE_EFFICIENCY_NB_HALF)
    ref = REFERENCE_NB / (REFERENCE_NB + TILE_EFFICIENCY_NB_HALF)
    return raw / ref


#: Inner blocking at which :data:`KERNEL_EFFICIENCY` was calibrated (the
#: paper's tuned ``ib = 32``); :func:`inner_block_efficiency_factor` is 1.0
#: there for every tile size.
REFERENCE_IB: int = 32

#: Controls how fast kernel efficiency degrades for small inner blocks: the
#: Level-3 gain halves (relative to its asymptote) at ``ib = IB_HALF``.
IB_HALF: int = 8


def inner_block_efficiency_factor(ib: int, nb: int) -> float:
    """Inner-blocking dependence of kernel efficiency, normalised at ``ib = 32``.

    The TS/TT kernels are built from inner-blocked factorizations: a small
    ``ib`` degenerates towards Level-2 BLAS (poor data reuse), while a large
    ``ib`` inflates the extra flops of the blocked representation by a
    factor ``~ 1 + ib / (2 nb)``.  We model the first effect with the same
    saturating curve as :func:`tile_efficiency_factor` and the second with
    the flop-overhead reciprocal, rescaled so the factor is exactly 1 at
    the paper's tuned ``ib = 32`` (for any ``nb``) — which places the
    model's optimum ``ib`` near ``sqrt(2 * IB_HALF * nb)``.
    """
    if ib < 1:
        raise ValueError(f"ib must be >= 1, got {ib}")
    if nb < 1:
        raise ValueError(f"nb must be >= 1, got {nb}")

    def raw(b: int) -> float:
        return (b / (b + IB_HALF)) / (1.0 + b / (2.0 * nb))

    return raw(ib) / raw(REFERENCE_IB)


def kernel_weight(kernel: KernelName | str) -> int:
    """Critical-path weight of ``kernel`` in units of ``nb^3 / 3`` flops."""
    return KERNEL_WEIGHTS[KernelName(kernel)]


def kernel_flops(kernel: KernelName | str, nb: int) -> float:
    """Number of floating-point operations of ``kernel`` for tile size ``nb``."""
    return kernel_weight(kernel) * (nb**3) / 3.0


def kernel_efficiency(
    kernel: KernelName | str,
    nb: int | None = None,
    ib: int | None = None,
) -> float:
    """Fraction of GEMM peak that ``kernel`` achieves (performance model).

    Without ``nb`` this is the calibration value at the reference tile size;
    with ``nb`` the tile-size dependence of :func:`tile_efficiency_factor`
    is applied, and with ``ib`` additionally the inner-blocking dependence
    of :func:`inner_block_efficiency_factor` (clamped to
    :data:`MAX_KERNEL_EFFICIENCY`).  ``ib=None`` (or the calibration value
    ``ib=32``) leaves the tile-size-only model unchanged.
    """
    base = KERNEL_EFFICIENCY[KernelName(kernel)]
    if nb is None:
        return base
    factor = tile_efficiency_factor(nb)
    if ib is not None:
        factor *= inner_block_efficiency_factor(ib, nb)
    return min(base * factor, MAX_KERNEL_EFFICIENCY)


def kernel_time_seconds(kernel: KernelName | str, nb: int, core_gemm_gflops: float) -> float:
    """Wall-clock duration of one kernel on one core of the machine model.

    ``core_gemm_gflops`` is the practical GEMM peak of a single core
    (37 GFlop/s on the paper's miriel nodes).
    """
    k = KernelName(kernel)
    flops = kernel_flops(k, nb)
    rate = core_gemm_gflops * 1e9 * kernel_efficiency(k, nb)
    return flops / rate
