"""Compact-WY Householder machinery.

This module implements, from scratch, the LAPACK building blocks the tile
kernels are made of:

* :func:`householder_vector` — LAPACK ``larfg``: one elementary reflector;
* :func:`qr_factor` — unblocked Householder QR of a (possibly rectangular)
  block, returning the ``V`` / ``T`` compact-WY representation and ``R``;
* :func:`build_t_factor` — LAPACK ``larft`` (forward, column-wise);
* :func:`apply_q` / :func:`apply_qt` — LAPACK ``larfb``: apply
  ``Q = I - V T V^T`` or its transpose to a block, from the left or right.

Only NumPy is used; the implementation favours clarity over raw speed
(tiles are small, ``nb x nb``) but applies reflectors in blocked form so the
work is done by matrix-matrix products.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Entry-magnitude range within which ``x . x`` neither underflows nor
#: overflows in double precision; outside it the reflector is computed on
#: a rescaled vector (cf. LAPACK ``dlarfg`` / ``dlassq``).
_RESCALE_MIN = 1e-140
_RESCALE_MAX = 1e140


def householder_vector(x: np.ndarray) -> Tuple[np.ndarray, float, float]:
    """Compute an elementary Householder reflector for the vector ``x``.

    Returns ``(v, tau, beta)`` with ``v[0] == 1`` such that
    ``(I - tau * v v^T) x = beta * e_1`` and ``|beta| == ||x||_2``.

    Follows the sign convention of LAPACK ``dlarfg`` (``beta`` has the
    opposite sign of ``x[0]``) which avoids cancellation.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("householder_vector expects a non-empty 1-D array")
    xmax = float(np.max(np.abs(x)))
    if xmax != 0.0 and not (_RESCALE_MIN <= xmax <= _RESCALE_MAX):
        # dlarfg-style guard: squaring entries this small (large) under-
        # (over-)flows, destroying the reflector's orthogonality.  Compute
        # on a power-of-two rescaling (exact) and scale beta back; v and
        # tau are invariant under scaling of x.  The exponent is clamped to
        # 1023 (the largest finite power of two): for subnormal xmax the
        # ideal factor 2**1026+ is not representable, and 2**1023 already
        # lifts any subnormal to at least 2**-51.
        s = 2.0 ** min(1023.0, -float(np.floor(np.log2(xmax))))
        v, tau, beta = householder_vector(x * s)
        return v, tau, beta / s
    alpha = x[0]
    sigma = float(np.dot(x[1:], x[1:]))
    v = x.copy()
    v[0] = 1.0
    if sigma == 0.0:
        # x is already a multiple of e_1: no reflection needed.
        return v, 0.0, float(alpha)
    norm_x = np.sqrt(alpha * alpha + sigma)
    beta = -norm_x if alpha >= 0 else norm_x
    v0 = alpha - beta
    v[1:] = x[1:] / v0
    tau = (beta - alpha) / beta
    return v, float(tau), float(beta)


def build_t_factor(v: np.ndarray, taus: np.ndarray) -> np.ndarray:
    """Build the upper-triangular ``T`` factor of the compact-WY form.

    Given the ``m x k`` matrix of Householder vectors ``V`` (unit diagonal,
    zero above) and their scalars ``tau``, returns the ``k x k`` upper
    triangular ``T`` such that ``H_1 H_2 ... H_k = I - V T V^T``
    (LAPACK ``dlarft``, direction *forward*, storage *column-wise*).
    """
    v = np.asarray(v, dtype=float)
    taus = np.asarray(taus, dtype=float)
    k = v.shape[1]
    t = np.zeros((k, k))
    for j in range(k):
        t[j, j] = taus[j]
        if j > 0 and taus[j] != 0.0:
            # T[0:j, j] = -tau_j * T[0:j, 0:j] @ (V[:, 0:j]^T @ V[:, j])
            w = v[:, :j].T @ v[:, j]
            t[:j, j] = -taus[j] * (t[:j, :j] @ w)
    return t


def qr_factor(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unblocked Householder QR factorization ``A = Q R``.

    Returns ``(V, T, R)`` where ``Q = I - V T V^T`` is ``m x m`` orthogonal,
    ``V`` is ``m x k`` unit-lower-trapezoidal (``k = min(m, n)``) and ``R``
    is the ``m x n`` upper-trapezoidal factor (zero below the diagonal).
    """
    a = np.array(a, dtype=float, copy=True)
    if a.ndim != 2:
        raise ValueError("qr_factor expects a 2-D array")
    m, n = a.shape
    k = min(m, n)
    v = np.zeros((m, k))
    taus = np.zeros(k)
    for j in range(k):
        vec, tau, beta = householder_vector(a[j:, j])
        v[j:, j] = vec
        taus[j] = tau
        a[j, j] = beta
        a[j + 1 :, j] = 0.0
        if tau != 0.0 and j + 1 < n:
            w = tau * (vec @ a[j:, j + 1 :])
            a[j:, j + 1 :] -= np.outer(vec, w)
    t = build_t_factor(v, taus)
    return v, t, a


def apply_qt(v: np.ndarray, t: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Apply ``Q^T = I - V T^T V^T`` to ``C`` from the left (in place on a copy)."""
    c = np.array(c, dtype=float, copy=True)
    w = v.T @ c
    w = t.T @ w
    c -= v @ w
    return c


def apply_q(v: np.ndarray, t: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Apply ``Q = I - V T V^T`` to ``C`` from the left (on a copy)."""
    c = np.array(c, dtype=float, copy=True)
    w = v.T @ c
    w = t @ w
    c -= v @ w
    return c


def apply_q_right(v: np.ndarray, t: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Apply ``Q = I - V T V^T`` to ``C`` from the right (on a copy)."""
    c = np.array(c, dtype=float, copy=True)
    w = c @ v
    w = w @ t
    c -= w @ v.T
    return c


def apply_qt_right(v: np.ndarray, t: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Apply ``Q^T = I - V T^T V^T`` to ``C`` from the right (on a copy)."""
    c = np.array(c, dtype=float, copy=True)
    w = c @ v
    w = w @ t.T
    c -= w @ v.T
    return c


def form_q(v: np.ndarray, t: np.ndarray, m: int | None = None) -> np.ndarray:
    """Explicitly form the orthogonal factor ``Q = I - V T V^T``.

    Mostly useful in tests and for accumulating singular vectors on small
    problems; the tiled algorithms themselves never form ``Q`` explicitly.
    """
    rows = v.shape[0] if m is None else m
    if rows < v.shape[0]:
        raise ValueError("m must be at least the number of rows of V")
    q = np.eye(rows)
    q[: v.shape[0], : v.shape[0]] -= v @ t @ v.T
    return q
