"""QR tile kernels (PLASMA ``core_blas`` equivalents).

Every kernel is numerically exact: it performs the real Householder
transformations, so running a tiled algorithm with these kernels produces a
genuine factorization whose residual and orthogonality can be checked.

Naming follows Table I of the paper:

* ``GEQRT``  — factor a square tile into a triangle (panel kernel);
* ``UNMQR``  — apply the panel reflectors to a tile on the same tile-row;
* ``TSQRT``  — zero a square tile using the triangle on top of it;
* ``TSMQR``  — apply the TSQRT reflectors to the corresponding tile pair;
* ``TTQRT``  — zero a triangular tile using the triangle on top of it;
* ``TTMQR``  — apply the TTQRT reflectors to the corresponding tile pair.

The kernels are pure functions: they never modify their inputs and return
new tiles together with a :class:`QRReflector` holding the compact-WY
representation needed by the corresponding update kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.kernels.householder import apply_qt, qr_factor


@dataclass(frozen=True)
class QRReflector:
    """Compact-WY representation ``Q = I - V T V^T`` produced by a QR kernel.

    Attributes
    ----------
    v:
        Householder vectors (unit lower trapezoidal), ``rows x k``.
    t:
        ``k x k`` upper triangular factor.
    split:
        For the two-tile kernels (TS/TT), the number of rows of the *top*
        tile inside the stacked representation; ``0`` for single-tile
        kernels (GEQRT).
    kind:
        Kernel that produced the reflector (``"GEQRT"``, ``"TSQRT"`` or
        ``"TTQRT"``), kept for debugging and validation.
    """

    v: np.ndarray
    t: np.ndarray
    split: int
    kind: str


def geqrt(a: np.ndarray) -> Tuple[np.ndarray, QRReflector]:
    """Factor tile ``A`` into ``Q R`` (panel kernel).

    Returns the upper-trapezoidal ``R`` (same shape as ``A``) and the
    reflector to be passed to :func:`unmqr`.
    """
    v, t, r = qr_factor(a)
    return r, QRReflector(v=v, t=t, split=0, kind="GEQRT")


def unmqr(refl: QRReflector, c: np.ndarray) -> np.ndarray:
    """Apply ``Q^T`` from a :func:`geqrt` factorization to tile ``C``."""
    if refl.kind != "GEQRT":
        raise ValueError(f"unmqr expects a GEQRT reflector, got {refl.kind}")
    if c.shape[0] != refl.v.shape[0]:
        raise ValueError(
            f"row mismatch: C has {c.shape[0]} rows, reflector expects {refl.v.shape[0]}"
        )
    return apply_qt(refl.v, refl.t, c)


def _stacked_qr(top: np.ndarray, bottom: np.ndarray, kind: str) -> Tuple[
    np.ndarray, np.ndarray, QRReflector
]:
    """QR of ``[top; bottom]`` stacked vertically; shared by TSQRT/TTQRT."""
    if top.shape[1] != bottom.shape[1]:
        raise ValueError(
            f"column mismatch: top has {top.shape[1]} columns, bottom has {bottom.shape[1]}"
        )
    stacked = np.vstack([top, bottom])
    v, t, r = qr_factor(stacked)
    split = top.shape[0]
    new_top = r[:split, :]
    new_bottom = np.zeros_like(bottom)
    return new_top, new_bottom, QRReflector(v=v, t=t, split=split, kind=kind)


def tsqrt(r_top: np.ndarray, a_bottom: np.ndarray) -> Tuple[np.ndarray, np.ndarray, QRReflector]:
    """Zero the square tile ``a_bottom`` using the triangle ``r_top`` above it.

    Computes the QR factorization of the stacked ``[r_top; a_bottom]`` block
    and returns ``(new_r_top, zero_tile, reflector)``.
    """
    return _stacked_qr(r_top, a_bottom, kind="TSQRT")


def ttqrt(r_top: np.ndarray, r_bottom: np.ndarray) -> Tuple[np.ndarray, np.ndarray, QRReflector]:
    """Zero the *triangular* tile ``r_bottom`` using the triangle ``r_top``.

    Numerically identical to :func:`tsqrt`; the distinction matters for the
    cost model (a TT elimination costs a third of a TS one, Table I) and for
    the amount of parallelism the reduction trees can expose.
    """
    return _stacked_qr(r_top, r_bottom, kind="TTQRT")


def _stacked_apply(refl: QRReflector, c_top: np.ndarray, c_bottom: np.ndarray) -> Tuple[
    np.ndarray, np.ndarray
]:
    if c_top.shape[0] != refl.split:
        raise ValueError(
            f"top tile has {c_top.shape[0]} rows but reflector was built with split={refl.split}"
        )
    if c_top.shape[0] + c_bottom.shape[0] != refl.v.shape[0]:
        raise ValueError(
            "stacked row count does not match the reflector "
            f"({c_top.shape[0]} + {c_bottom.shape[0]} != {refl.v.shape[0]})"
        )
    stacked = np.vstack([c_top, c_bottom])
    updated = apply_qt(refl.v, refl.t, stacked)
    return updated[: refl.split, :], updated[refl.split :, :]


def tsmqr(refl: QRReflector, c_top: np.ndarray, c_bottom: np.ndarray) -> Tuple[
    np.ndarray, np.ndarray
]:
    """Apply the reflectors of a :func:`tsqrt` to the tile pair ``(c_top, c_bottom)``."""
    if refl.kind != "TSQRT":
        raise ValueError(f"tsmqr expects a TSQRT reflector, got {refl.kind}")
    return _stacked_apply(refl, c_top, c_bottom)


def ttmqr(refl: QRReflector, c_top: np.ndarray, c_bottom: np.ndarray) -> Tuple[
    np.ndarray, np.ndarray
]:
    """Apply the reflectors of a :func:`ttqrt` to the tile pair ``(c_top, c_bottom)``."""
    if refl.kind != "TTQRT":
        raise ValueError(f"ttmqr expects a TTQRT reflector, got {refl.kind}")
    return _stacked_apply(refl, c_top, c_bottom)
