"""Event-driven simulation engine: replay a Program under any policy.

The :class:`SimulationEngine` replaces the legacy
:class:`~repro.runtime.scheduler.ListScheduler`'s monolithic loop with an
engine/policy/network split:

* the **engine** owns the events — per-node core-free heaps (the event
  queues), dependency release, owner-computes mapping — and is agnostic of
  both the scheduling order and the communication cost;
* the **policy** (:mod:`repro.runtime.policies`) only ranks ops; the
  engine pops ready ops in ``(policy key, op id)`` order, so tie-breaking
  is stable task-id ordering and schedules are bit-reproducible across
  runs and Python hash seeds;
* the **network model** (:mod:`repro.runtime.network`) prices cross-node
  transfers: ``uniform`` keeps the legacy flat pre-charge per edge
  (bit-identical, golden-pinned), ``alpha-beta`` turns each deduplicated
  (producer, destination node) transfer into a message event with
  latency + bandwidth cost, serialized injection through the sender's NIC
  and an optional rendezvous handshake.

With the ``list`` policy and the ``uniform`` network the engine reproduces
the legacy scheduler's makespans exactly (same priorities, same greedy
assignment discipline, same communication accounting); the other policies
and networks open scheduling and communication fidelity as experiment axes
on the same compiled :class:`~repro.ir.program.Program`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple, Union

from repro.dag.task import TaskGraph
from repro.ir.program import Program
from repro.runtime.machine import Machine
from repro.runtime.network import NetworkModel, get_network_model
from repro.runtime.policies import SchedulingPolicy, get_policy
from repro.runtime.scheduler import Schedule
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid


class SimulationEngine:
    """Replay compiled programs on a machine model under a pluggable policy.

    Parameters
    ----------
    machine:
        The machine model (node count, cores, kernel durations, network
        hardware parameters).
    distribution:
        Tile-to-node mapping; defaults to a 2D block-cyclic distribution on
        the near-square process grid for the machine's node count.
    policy:
        A :class:`~repro.runtime.policies.SchedulingPolicy` name or
        instance (default ``"list"``, the legacy behaviour).
    network:
        A :class:`~repro.runtime.network.NetworkModel` name or instance
        (default ``"uniform"``, the legacy flat-cost communication model).
    """

    def __init__(
        self,
        machine: Machine,
        distribution: Optional[BlockCyclicDistribution] = None,
        *,
        policy: Union[str, SchedulingPolicy] = "list",
        network: Union[str, NetworkModel] = "uniform",
    ) -> None:
        self.machine = machine
        self.policy = get_policy(policy)
        self.network = get_network_model(network)
        if distribution is None:
            distribution = BlockCyclicDistribution(
                ProcessGrid.for_square_matrix(machine.n_nodes)
            )
        if distribution.grid.size != machine.n_nodes:
            raise ValueError(
                f"distribution has {distribution.grid.size} processes but the machine "
                f"has {machine.n_nodes} nodes"
            )
        self.distribution = distribution

    # ------------------------------------------------------------------ #
    def run(self, program: Union[Program, TaskGraph]) -> Schedule:
        """Simulate one replay of ``program`` and return the schedule.

        Accepts a compiled :class:`~repro.ir.program.Program` (preferred —
        replayable for free) or a legacy :class:`~repro.dag.task.TaskGraph`
        (wrapped on the fly).
        """
        if isinstance(program, TaskGraph):
            program = Program.from_task_graph(program)
        n = len(program)
        machine = self.machine
        network = self.network
        n_nodes = machine.n_nodes
        if n == 0:
            return Schedule(
                0.0, [], [], [], [0.0] * n_nodes, 0, 0,
                comm_time_per_node=[0.0] * n_nodes,
                messages_per_node=[0] * n_nodes,
            )

        durations = [machine.kernel_duration(op.kernel) for op in program.ops]
        node_of_op = [
            self.distribution.owner(*op.owner_tile) if n_nodes > 1 else 0
            for op in program.ops
        ]
        keys = self.policy.rank(program, durations, node_of_op, machine)
        if len(keys) != n:
            raise ValueError(
                f"policy {self.policy.name!r} ranked {len(keys)} ops, expected {n}"
            )

        indegree = program.indegrees()
        ready_time = [0.0] * n
        start = [0.0] * n
        finish = [0.0] * n
        busy = [0.0] * n_nodes
        messages = 0
        comm_bytes = 0
        sent = [0] * n_nodes
        comm_time = [0.0] * n_nodes
        event_driven = network.event_driven
        transfer = machine.transfer_time()
        # Uniform model: dedup set for message *counting* only (arrival is
        # charged per edge).  Alpha-beta: the first release of a (producer,
        # destination node) pair injects a message event; later consumers of
        # the same pair reuse its arrival time (the runtime caches remote
        # tiles).  ``nic_free`` serializes each node's injections in
        # *dispatch order* — the order ops are popped by the greedy loop —
        # not in finish-time order.  That is the same no-lookahead greedy
        # discipline the engine applies to cores (an op assigned to a core
        # can idle it while a later-popped op would have been ready
        # sooner), kept deliberately so the list policy's dispatch order
        # stays the legacy one; a time-ordered NIC would need a global
        # message event queue and would reprice schedules.
        seen_transfers: set[Tuple[int, int]] = set()
        transfer_arrival: Dict[Tuple[int, int], float] = {}
        nic_free = [0.0] * n_nodes

        # Per-node event state: a heap of core-free events (free time, core
        # index) and a heap of ready ops ordered by (policy key, op id).
        core_of_op = [0] * n
        core_heaps: List[List[Tuple[float, int]]] = [
            [(0.0, c) for c in range(machine.cores_per_node)]
            for _ in range(n_nodes)
        ]
        for h in core_heaps:
            heapq.heapify(h)
        ready_heaps: List[List[Tuple[object, int]]] = [
            [] for _ in range(n_nodes)
        ]

        def push_ready(op_id: int) -> None:
            heapq.heappush(ready_heaps[node_of_op[op_id]], (keys[op_id], op_id))

        for op_id in range(n):
            if indegree[op_id] == 0:
                push_ready(op_id)

        scheduled = 0
        while scheduled < n:
            progressed = False
            for node in range(n_nodes):
                heap = ready_heaps[node]
                while heap:
                    _, op_id = heapq.heappop(heap)
                    core_free, core_idx = heapq.heappop(core_heaps[node])
                    t_start = max(core_free, ready_time[op_id])
                    t_finish = t_start + durations[op_id]
                    start[op_id] = t_start
                    finish[op_id] = t_finish
                    core_of_op[op_id] = core_idx
                    busy[node] += durations[op_id]
                    heapq.heappush(core_heaps[node], (t_finish, core_idx))
                    scheduled += 1
                    progressed = True
                    # Release successors; cross-node edges cost one transfer
                    # per (producer, destination node) — the runtime caches
                    # remote tiles.
                    for succ in program.successors(op_id):
                        dst = node_of_op[succ]
                        arrival = t_finish
                        if dst != node:
                            key = (op_id, dst)
                            if event_driven:
                                cached = transfer_arrival.get(key)
                                if cached is None:
                                    op = program.ops[op_id]
                                    n_bytes = network.message_bytes(op, machine)
                                    inject_start = max(
                                        t_finish + network.handshake_seconds(machine),
                                        nic_free[node],
                                    )
                                    injection = machine.injection_seconds(n_bytes)
                                    nic_free[node] = inject_start + injection
                                    cached = inject_start + network.message_seconds(
                                        n_bytes, machine
                                    )
                                    transfer_arrival[key] = cached
                                    messages += 1
                                    comm_bytes += n_bytes
                                    sent[node] += 1
                                    comm_time[node] += injection
                                arrival = cached
                            else:
                                arrival += transfer
                                if key not in seen_transfers:
                                    seen_transfers.add(key)
                                    messages += 1
                                    comm_bytes += machine.tile_bytes
                                    sent[node] += 1
                                    comm_time[node] += transfer
                        if arrival > ready_time[succ]:
                            ready_time[succ] = arrival
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            push_ready(succ)
            if not progressed:  # pragma: no cover - defensive (cycle)
                raise RuntimeError("engine stalled: the program has a cycle")

        return Schedule(
            makespan=max(finish),
            start=start,
            finish=finish,
            node_of_task=node_of_op,
            busy_time_per_node=busy,
            messages=messages,
            comm_bytes=comm_bytes,
            core_of_task=core_of_op,
            comm_time_per_node=comm_time,
            messages_per_node=sent,
        )


def run_policy(
    program: Union[Program, TaskGraph],
    machine: Machine,
    *,
    policy: Union[str, SchedulingPolicy] = "list",
    distribution: Optional[BlockCyclicDistribution] = None,
    network: Union[str, NetworkModel] = "uniform",
) -> Schedule:
    """One-shot convenience wrapper around :class:`SimulationEngine`."""
    return SimulationEngine(
        machine, distribution, policy=policy, network=network
    ).run(program)


def critical_path_seconds(
    program: Union[Program, TaskGraph],
    machine: Machine,
) -> float:
    """Duration-weighted critical path: the makespan lower bound no
    scheduling policy can beat on ``machine`` (unbounded cores, free
    communication)."""
    if isinstance(program, TaskGraph):
        program = Program.from_task_graph(program)
    return program.critical_path(
        weight_fn=lambda op: machine.kernel_duration(op.kernel)
    )


def serial_seconds(
    program: Union[Program, TaskGraph],
    machine: Machine,
) -> float:
    """Single-core replay time: the makespan upper bound for any policy."""
    if isinstance(program, TaskGraph):
        program = Program.from_task_graph(program)
    return sum(machine.kernel_duration(op.kernel) for op in program.ops)
