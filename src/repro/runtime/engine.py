"""Event-driven simulation engine: replay a Program under any policy.

The :class:`SimulationEngine` replaces the legacy
:class:`~repro.runtime.scheduler.ListScheduler`'s monolithic loop with an
engine/policy/network split:

* the **engine** owns the events — per-node core-free heaps (the event
  queues), dependency release, owner-computes mapping — and is agnostic of
  both the scheduling order and the communication cost;
* the **policy** (:mod:`repro.runtime.policies`) only ranks ops; the
  engine pops ready ops in ``(policy key, op id)`` order, so tie-breaking
  is stable task-id ordering and schedules are bit-reproducible across
  runs and Python hash seeds;
* the **network model** (:mod:`repro.runtime.network`) prices cross-node
  transfers: ``uniform`` keeps the legacy flat pre-charge per edge
  (bit-identical, golden-pinned), ``alpha-beta`` turns each deduplicated
  (producer, destination node) transfer into a message event with
  latency + bandwidth cost, serialized injection through the sender's NIC
  and an optional rendezvous handshake.

With the ``list`` policy and the ``uniform`` network the engine reproduces
the legacy scheduler's makespans exactly (same priorities, same greedy
assignment discipline, same communication accounting); the other policies
and networks open scheduling and communication fidelity as experiment axes
on the same compiled :class:`~repro.ir.program.Program`.

Structure-of-arrays fast path
-----------------------------

By default (``fast=True``) the engine prepares every per-op quantity as a
flat array before entering the event loop:

* the **duration vector** is a 12-entry per-machine kernel-duration table
  (:meth:`repro.runtime.machine.Machine.kernel_duration_table`) gathered
  through the program's packed kernel-code column — and memoized per
  (machine, program), so repeated ``simulate``/``tune`` calls for the same
  cached program never re-price an op;
* the **owner vector** is one vectorized block-cyclic computation over the
  owner-tile coordinate columns (no per-op ``distribution.owner()``
  calls), memoized per (program, grid) — callers that already know the
  mapping can also pass ``node_of_op=`` to :meth:`SimulationEngine.run`;
* the **policy keys** come from the vectorized rank hooks of
  :mod:`repro.runtime.policies` (topological level sweeps instead of
  per-node recursion), memoized per (program, machine, grid, policy).

The memo tables are module-level and keyed by weak program references, so
a tuning sweep whose candidates share a cached program shares the pricing
and rank work across all of them, and dropping a program from the program
cache frees its tables.  ``fast=False`` (or ``REPRO_ENGINE_FAST=0``)
selects the retained legacy object path — per-op pricing and ranking over
``program.ops`` — which the differential tests and
``benchmarks/bench_scale.py`` hold bit-identical to the fast path.
"""

from __future__ import annotations

import heapq
import os
import threading
import weakref
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dag.task import TaskGraph
from repro.ir.program import Program
from repro.obs.metrics import REGISTRY
from repro.obs.tracer import Tracer, TransferRecord, current_tracer
from repro.runtime.machine import Machine
from repro.runtime.network import (
    NetworkModel,
    get_network_model,
    resolved_message_bytes_vector,
)
from repro.runtime.policies import SchedulingPolicy, get_policy
from repro.runtime.scheduler import Schedule
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid

# --------------------------------------------------------------------------- #
# Per-(program, ...) memo tables.  Weak keys: dropping a Program from the
# program cache frees its derived tables.  A single lock guards all three —
# the tuning thread pools hit them concurrently and the values are cheap to
# (re)build, so contention is negligible.
# --------------------------------------------------------------------------- #
_MEMO_LOCK = threading.Lock()
#: program -> {machine: duration vector (float64, read-only)}
_DURATION_VECTORS: "weakref.WeakKeyDictionary[Program, Dict]" = (
    weakref.WeakKeyDictionary()
)
#: program -> {(grid rows, grid cols): owner vector (int64, read-only)}
_OWNER_VECTORS: "weakref.WeakKeyDictionary[Program, Dict]" = (
    weakref.WeakKeyDictionary()
)
#: program -> {(policy token, machine, grid key): policy key list}
_RANK_KEYS: "weakref.WeakKeyDictionary[Program, Dict]" = (
    weakref.WeakKeyDictionary()
)
#: program -> {(policy token, machine-or-None, grid key): (rank_of, id_of)}
#: The batch engine's dense-rank representation of a policy's total order
#: (see :mod:`repro.runtime.batch`); ``machine`` is folded to ``None`` for
#: machine-invariant rankings so candidates that differ only in their
#: machine share one entry.
_BATCH_RANK_ORDERS: "weakref.WeakKeyDictionary[Program, Dict]" = (
    weakref.WeakKeyDictionary()
)
#: program -> {(machine, grid key): makespan lower bound in seconds}
#: Analytic ``max(critical path, area)`` bounds used by the batch engine's
#: pre-pruning; keyed per (machine, grid) because both the duration vector
#: and the owner-computes placement feed the bound.
_BATCH_BOUNDS: "weakref.WeakKeyDictionary[Program, Dict]" = (
    weakref.WeakKeyDictionary()
)


def _memo_get(table, program: Program, key, name: str):
    with _MEMO_LOCK:
        per = table.get(program)
        value = None if per is None else per.get(key)
    # Hit/miss accounting happens outside the memo lock; one registry
    # increment per run-level vector lookup (not per op), so the metrics
    # cost is negligible even in tuning sweeps.
    REGISTRY.inc(f"engine.memo.{name}.{'hits' if value is not None else 'misses'}")
    return value


def _memo_put(table, program: Program, key, value) -> None:
    with _MEMO_LOCK:
        per = table.get(program)
        if per is None:
            per = {}
            table[program] = per
        per[key] = value


def engine_memo_stats() -> Dict[str, int]:
    """Entry counts and hit/miss totals of the per-program memo tables.

    The entry counts are read off the weak-keyed tables directly; the
    hit/miss counters live in the observability registry
    (:data:`repro.obs.metrics.REGISTRY`, names ``engine.memo.*``), so
    callers can bracket a run with ``REGISTRY.snapshot()`` /
    ``delta_since`` for per-run figures or ``REGISTRY.reset("engine.memo.")``
    instead of inheriting totals from unrelated runs.
    """
    with _MEMO_LOCK:
        stats = {
            "duration_programs": len(_DURATION_VECTORS),
            "owner_programs": len(_OWNER_VECTORS),
            "rank_programs": len(_RANK_KEYS),
            "batch_order_programs": len(_BATCH_RANK_ORDERS),
            "batch_bound_programs": len(_BATCH_BOUNDS),
        }
    for name in ("duration", "owner", "rank"):
        for outcome in ("hits", "misses"):
            stats[f"{name}_{outcome}"] = int(
                REGISTRY.counter(f"engine.memo.{name}.{outcome}")
            )
    # Batch-level reuse (see repro.runtime.batch): per-candidate hit/miss
    # counters undercount when one rank order serves a whole batch, so the
    # batch layer reports its own cross-candidate counters.
    for kind in ("order", "bound"):
        for outcome in ("hits", "misses"):
            stats[f"batch_{kind}_{outcome}"] = int(
                REGISTRY.counter(f"engine.memo.batch.{kind}.{outcome}")
            )
    for name in ("candidates", "simulated", "deduped", "pruned"):
        stats[f"batch_{name}"] = int(
            REGISTRY.counter(f"engine.memo.batch.{name}")
        )
    return stats


def _collect_transfers(
    program: Program,
    machine: Machine,
    network: NetworkModel,
    finish: Sequence[float],
    node_of: Sequence[int],
    transfer_arrival: Dict[Tuple[int, int], float],
    seen_transfers: "set[Tuple[int, int]]",
    msg_bytes: Optional[List[int]],
) -> List[TransferRecord]:
    """Reconstruct per-message transfer records after the event loop.

    The loops record nothing while running; every message's full timeline
    is recoverable from state they already keep.  Under the event-driven
    models the arrival map's insertion order *is* the NIC dispatch order,
    and ``inject_start = arrival - wire`` / ``injection`` / ``wire`` are
    re-derived from the payload size exactly as the loop derived them.
    Under the uniform model each deduplicated edge is a flat pre-charge
    with no NIC queueing, so the record is ``release -> release +
    transfer`` with the tile payload.
    """
    records: List[TransferRecord] = []
    if network.event_driven:
        handshake = network.handshake_seconds(machine)
        for (op_id, dst), arrival in transfer_arrival.items():
            if msg_bytes is not None:
                n_bytes = msg_bytes[op_id]
            else:
                n_bytes = network.message_bytes(program.ops[op_id], machine)
            wire = network.message_seconds(n_bytes, machine)
            records.append(
                TransferRecord(
                    op_id=op_id,
                    src=node_of[op_id],
                    dst=dst,
                    n_bytes=n_bytes,
                    release=finish[op_id],
                    handshake=handshake,
                    inject_start=arrival - wire,
                    injection=machine.injection_seconds(n_bytes),
                    wire=wire,
                    arrival=arrival,
                )
            )
    else:
        transfer = machine.transfer_time()
        n_bytes = machine.tile_bytes
        for op_id, dst in sorted(seen_transfers):
            release = finish[op_id]
            records.append(
                TransferRecord(
                    op_id=op_id,
                    src=node_of[op_id],
                    dst=dst,
                    n_bytes=n_bytes,
                    release=release,
                    handshake=0.0,
                    inject_start=release,
                    injection=transfer,
                    wire=transfer,
                    arrival=release + transfer,
                )
            )
    return records


class SimulationEngine:
    """Replay compiled programs on a machine model under a pluggable policy.

    Parameters
    ----------
    machine:
        The machine model (node count, cores, kernel durations, network
        hardware parameters).
    distribution:
        Tile-to-node mapping; defaults to a 2D block-cyclic distribution on
        the near-square process grid for the machine's node count.
    policy:
        A :class:`~repro.runtime.policies.SchedulingPolicy` name or
        instance (default ``"list"``, the legacy behaviour).
    network:
        A :class:`~repro.runtime.network.NetworkModel` name or instance
        (default ``"uniform"``, the legacy flat-cost communication model).
    fast:
        Select the structure-of-arrays fast path (default; also
        controllable via the ``REPRO_ENGINE_FAST`` environment variable).
        ``fast=False`` runs the retained legacy object path; both produce
        bit-identical schedules under every policy and network.
    """

    def __init__(
        self,
        machine: Machine,
        distribution: Optional[BlockCyclicDistribution] = None,
        *,
        policy: Union[str, SchedulingPolicy] = "list",
        network: Union[str, NetworkModel] = "uniform",
        fast: Optional[bool] = None,
    ) -> None:
        self.machine = machine
        self.policy = get_policy(policy)
        self.network = get_network_model(network)
        if fast is None:
            fast = os.environ.get("REPRO_ENGINE_FAST", "1") != "0"
        self.fast = bool(fast)
        if distribution is None:
            distribution = BlockCyclicDistribution(
                ProcessGrid.for_square_matrix(machine.n_nodes)
            )
        if distribution.grid.size != machine.n_nodes:
            raise ValueError(
                f"distribution has {distribution.grid.size} processes but the machine "
                f"has {machine.n_nodes} nodes"
            )
        self.distribution = distribution

    # ------------------------------------------------------------------ #
    # Memoized per-program vectors (shared module-wide across engines)
    # ------------------------------------------------------------------ #
    def duration_vector(self, program: Program) -> np.ndarray:
        """Per-op durations on this machine (float64, read-only, memoized).

        One 12-entry kernel table gather instead of ``len(program)`` dict
        lookups; identical values to ``machine.kernel_duration(op.kernel)``
        per op.
        """
        machine = self.machine
        vec = _memo_get(_DURATION_VECTORS, program, machine, "duration")
        if vec is None:
            vec = machine.kernel_duration_table()[program.kernel_codes_np]
            vec.setflags(write=False)
            _memo_put(_DURATION_VECTORS, program, machine, vec)
        return vec

    def owner_vector(self, program: Program) -> Optional[np.ndarray]:
        """Owner node of every op (int64, memoized), or ``None`` on one node.

        Uses the vectorized block-cyclic mapping
        (:meth:`~repro.tiles.distribution.BlockCyclicDistribution.owner_array`)
        over the program's owner-tile columns; distribution subclasses with
        a custom ``owner()`` fall back to per-op resolution (uncached).
        """
        if self.machine.n_nodes == 1:
            return None
        dist = self.distribution
        if type(dist) is BlockCyclicDistribution:
            key = (dist.grid.rows, dist.grid.cols)
            vec = _memo_get(_OWNER_VECTORS, program, key, "owner")
            if vec is None:
                vec = dist.owner_array(
                    program.owner_rows_np, program.owner_cols_np
                )
                vec.setflags(write=False)
                _memo_put(_OWNER_VECTORS, program, key, vec)
            return vec
        rows = program.owner_rows_np.tolist()
        cols = program.owner_cols_np.tolist()
        return np.fromiter(
            (dist.owner(i, j) for i, j in zip(rows, cols)),
            dtype=np.int64,
            count=len(program),
        )

    def rank_keys(
        self,
        program: Program,
        durations_np: np.ndarray,
        node_np: Optional[np.ndarray],
        *,
        cacheable: bool = True,
    ) -> List[object]:
        """Policy keys for every op (memoized per program/machine/grid/policy).

        Uses the policy's vectorized :meth:`~repro.runtime.policies.
        SchedulingPolicy.rank_array` hook when available, falling back to
        the legacy :meth:`~repro.runtime.policies.SchedulingPolicy.rank`.
        Keys are converted to plain Python objects so the ready-heap
        comparisons stay native-speed.
        """
        policy = self.policy
        token = policy.cache_token
        key = None
        # Only the canonical block-cyclic mapping may hit the memo: a
        # distribution subclass with its own owner() produces different
        # node vectors for the same grid shape, so its rank keys must not
        # be cached under (or served from) the (machine, grid) key.
        if self.machine.n_nodes > 1 and (
            type(self.distribution) is not BlockCyclicDistribution
        ):
            cacheable = False
        if cacheable and token is not None:
            grid_key = (
                (self.distribution.grid.rows, self.distribution.grid.cols)
                if self.machine.n_nodes > 1
                else None
            )
            key = (token, self.machine, grid_key)
            cached = _memo_get(_RANK_KEYS, program, key, "rank")
            if cached is not None:
                return cached
        keys = policy.rank_array(program, durations_np, node_np, self.machine)
        if keys is None:
            node_list = (
                node_np.tolist() if node_np is not None else [0] * len(program)
            )
            keys = policy.rank(
                program, durations_np.tolist(), node_list, self.machine
            )
        if isinstance(keys, np.ndarray):
            keys = keys.tolist()
        if len(keys) != len(program):
            raise ValueError(
                f"policy {policy.name!r} ranked {len(keys)} ops, "
                f"expected {len(program)}"
            )
        if key is not None:
            _memo_put(_RANK_KEYS, program, key, keys)
        return keys

    # ------------------------------------------------------------------ #
    def run(
        self,
        program: Union[Program, TaskGraph],
        *,
        node_of_op: Optional[Sequence[int]] = None,
    ) -> Schedule:
        """Simulate one replay of ``program`` and return the schedule.

        Accepts a compiled :class:`~repro.ir.program.Program` (preferred —
        replayable for free) or a legacy :class:`~repro.dag.task.TaskGraph`
        (wrapped on the fly).  ``node_of_op`` optionally supplies a
        precomputed owner-node array (one entry per op), skipping the
        distribution lookup entirely — useful when a caller already
        resolved the mapping, e.g. for a custom placement study.
        """
        if isinstance(program, TaskGraph):
            program = Program.from_task_graph(program)
        n = len(program)
        n_nodes = self.machine.n_nodes
        if node_of_op is not None and len(node_of_op) != n:
            raise ValueError(
                f"node_of_op has {len(node_of_op)} entries but the program "
                f"has {n} ops"
            )
        if n == 0:
            return Schedule(
                0.0, [], [], [], [0.0] * n_nodes, 0, 0,
                core_of_task=[],
                comm_time_per_node=[0.0] * n_nodes,
                messages_per_node=[0] * n_nodes,
            )
        # Ambient tracer pickup: one thread-local read.  The loops below
        # never consult the tracer — they record nothing while running —
        # so traced and untraced replays execute identical instructions
        # and schedules are bit-identical by construction.
        tracer = current_tracer()
        if self.machine.heterogeneous:
            # Heterogeneous machines are priced by the scenario replay
            # layer (per-node/per-core slowdown factors over the nominal
            # duration vector); imported lazily so the homogeneous hot
            # path stays untouched.  Replays record a phase span but no
            # per-task trace events.
            from repro.runtime.scenario import ScenarioReplayer

            replayer = ScenarioReplayer(self, program, node_of_op=node_of_op)
            if tracer is None:
                schedule = replayer.replay()
            else:
                with tracer.phase("simulate"):
                    schedule = replayer.replay()
        else:
            runner = self._run_fast if self.fast else self._run_legacy
            if tracer is None:
                schedule = runner(program, node_of_op)
            else:
                with tracer.phase("simulate"):
                    schedule = runner(program, node_of_op, tracer)
        # Opt-in static verification on exit (REPRO_VERIFY=1): sanitize the
        # schedule's feasibility before handing it to the caller.
        from repro.verify.hooks import verify_enabled

        if verify_enabled():
            from repro.verify.hooks import check_schedule

            check_schedule(
                schedule,
                program,
                self.machine,
                distribution=self.distribution,
                network=self.network,
                node_of_op=node_of_op,
            )
        return schedule

    # ------------------------------------------------------------------ #
    # Structure-of-arrays fast path
    # ------------------------------------------------------------------ #
    def _run_fast(
        self,
        program: Program,
        node_of_op: Optional[Sequence[int]],
        tracer: Optional[Tracer] = None,
    ) -> Schedule:
        machine = self.machine
        network = self.network
        n = len(program)
        n_nodes = machine.n_nodes

        with tracer.phase("rank") if tracer is not None else nullcontext():
            durations_np = self.duration_vector(program)
            if node_of_op is None:
                node_np = self.owner_vector(program)
                cacheable = True
            else:
                node_np = np.ascontiguousarray(node_of_op, dtype=np.int64)
                if n_nodes == 1:
                    node_np = None
                cacheable = False
            keys = self.rank_keys(
                program, durations_np, node_np, cacheable=cacheable
            )

        durations = durations_np.tolist()
        indegree = np.diff(program.pred_indptr_np).tolist()
        succ_indptr, succ_ids = program.succ_csr_lists()
        # Heap entries are prebuilt (key, op id) tuples: one allocation per
        # op instead of one per push.
        entry_of = list(zip(keys, range(n)))
        ready_time = [0.0] * n
        start = [0.0] * n
        finish = [0.0] * n
        core_of_op = [0] * n
        heappush = heapq.heappush
        heappop = heapq.heappop
        cores = machine.cores_per_node

        if n_nodes == 1:
            # Single node: every edge is local, so the node round-robin and
            # all transfer accounting vanish; one drain loop empties the
            # ready heap in exactly the legacy pop order.
            core_heap = [(0.0, c) for c in range(cores)]  # already a heap
            ready: List[Tuple[object, int]] = []
            for op_id in range(n):
                if indegree[op_id] == 0:
                    heappush(ready, entry_of[op_id])
            busy = 0.0
            scheduled = 0
            while ready:
                _, op_id = heappop(ready)
                core_free, core_idx = heappop(core_heap)
                rt = ready_time[op_id]
                t_start = core_free if core_free > rt else rt
                d = durations[op_id]
                t_finish = t_start + d
                start[op_id] = t_start
                finish[op_id] = t_finish
                core_of_op[op_id] = core_idx
                busy += d
                heappush(core_heap, (t_finish, core_idx))
                scheduled += 1
                for k in range(succ_indptr[op_id], succ_indptr[op_id + 1]):
                    succ = succ_ids[k]
                    if t_finish > ready_time[succ]:
                        ready_time[succ] = t_finish
                    deg = indegree[succ] - 1
                    indegree[succ] = deg
                    if deg == 0:
                        heappush(ready, entry_of[succ])
            if scheduled < n:  # pragma: no cover - defensive (cycle)
                raise RuntimeError("engine stalled: the program has a cycle")
            schedule = Schedule(
                makespan=max(finish),
                start=start,
                finish=finish,
                node_of_task=[0] * n,
                busy_time_per_node=[busy],
                messages=0,
                comm_bytes=0,
                core_of_task=core_of_op,
                comm_time_per_node=[0.0],
                messages_per_node=[0],
            )
            if tracer is not None:
                self._record_run(tracer, program, schedule, ready_time)
            return schedule

        # Multi-node: identical discipline to the legacy loop (greedy node
        # round-robin, dispatch-order NIC serialization — see the legacy
        # path's comment), with every per-op quantity pre-resolved into a
        # flat list.
        node_of = node_np.tolist()
        busy = [0.0] * n_nodes
        messages = 0
        comm_bytes = 0
        sent = [0] * n_nodes
        comm_time = [0.0] * n_nodes
        event_driven = network.event_driven
        transfer = machine.transfer_time()
        handshake = network.handshake_seconds(machine)
        msg_bytes: Optional[List[int]] = None
        if event_driven:
            msg_bytes = resolved_message_bytes_vector(
                network, program, machine
            ).tolist()
        # (injection seconds, wire seconds) per distinct payload size — the
        # recorded streams only produce a handful of distinct sizes.
        msg_cost_cache: Dict[int, Tuple[float, float]] = {}
        seen_transfers: set[Tuple[int, int]] = set()
        transfer_arrival: Dict[Tuple[int, int], float] = {}
        nic_free = [0.0] * n_nodes

        core_heaps: List[List[Tuple[float, int]]] = [
            [(0.0, c) for c in range(cores)] for _ in range(n_nodes)
        ]
        ready_heaps: List[List[Tuple[object, int]]] = [
            [] for _ in range(n_nodes)
        ]
        for op_id in range(n):
            if indegree[op_id] == 0:
                heappush(ready_heaps[node_of[op_id]], entry_of[op_id])

        scheduled = 0
        while scheduled < n:
            progressed = False
            for node in range(n_nodes):
                heap = ready_heaps[node]
                core_heap = core_heaps[node]
                while heap:
                    _, op_id = heappop(heap)
                    core_free, core_idx = heappop(core_heap)
                    rt = ready_time[op_id]
                    t_start = core_free if core_free > rt else rt
                    d = durations[op_id]
                    t_finish = t_start + d
                    start[op_id] = t_start
                    finish[op_id] = t_finish
                    core_of_op[op_id] = core_idx
                    busy[node] += d
                    heappush(core_heap, (t_finish, core_idx))
                    scheduled += 1
                    progressed = True
                    for k in range(succ_indptr[op_id], succ_indptr[op_id + 1]):
                        succ = succ_ids[k]
                        dst = node_of[succ]
                        arrival = t_finish
                        if dst != node:
                            tkey = (op_id, dst)
                            if event_driven:
                                cached = transfer_arrival.get(tkey)
                                if cached is None:
                                    n_bytes = msg_bytes[op_id]
                                    cost = msg_cost_cache.get(n_bytes)
                                    if cost is None:
                                        cost = (
                                            machine.injection_seconds(n_bytes),
                                            network.message_seconds(
                                                n_bytes, machine
                                            ),
                                        )
                                        msg_cost_cache[n_bytes] = cost
                                    injection, wire = cost
                                    inject_start = t_finish + handshake
                                    if nic_free[node] > inject_start:
                                        inject_start = nic_free[node]
                                    nic_free[node] = inject_start + injection
                                    cached = inject_start + wire
                                    transfer_arrival[tkey] = cached
                                    messages += 1
                                    comm_bytes += n_bytes
                                    sent[node] += 1
                                    comm_time[node] += injection
                                arrival = cached
                            else:
                                arrival += transfer
                                if tkey not in seen_transfers:
                                    seen_transfers.add(tkey)
                                    messages += 1
                                    comm_bytes += machine.tile_bytes
                                    sent[node] += 1
                                    comm_time[node] += transfer
                        if arrival > ready_time[succ]:
                            ready_time[succ] = arrival
                        deg = indegree[succ] - 1
                        indegree[succ] = deg
                        if deg == 0:
                            heappush(ready_heaps[dst], entry_of[succ])
            if not progressed:  # pragma: no cover - defensive (cycle)
                raise RuntimeError("engine stalled: the program has a cycle")

        schedule = Schedule(
            makespan=max(finish),
            start=start,
            finish=finish,
            node_of_task=node_of,
            busy_time_per_node=busy,
            messages=messages,
            comm_bytes=comm_bytes,
            core_of_task=core_of_op,
            comm_time_per_node=comm_time,
            messages_per_node=sent,
        )
        if tracer is not None:
            self._record_run(
                tracer, program, schedule, ready_time,
                transfer_arrival=transfer_arrival,
                seen_transfers=seen_transfers,
                msg_bytes=msg_bytes,
            )
        return schedule

    # ------------------------------------------------------------------ #
    # Legacy object path (the pre-SoA engine, retained verbatim as the
    # differential baseline: per-op pricing/ranking over ``program.ops``)
    # ------------------------------------------------------------------ #
    def _run_legacy(
        self,
        program: Program,
        node_of_op: Optional[Sequence[int]],
        tracer: Optional[Tracer] = None,
    ) -> Schedule:
        n = len(program)
        machine = self.machine
        network = self.network
        n_nodes = machine.n_nodes

        with tracer.phase("rank") if tracer is not None else nullcontext():
            durations = [
                machine.kernel_duration(op.kernel) for op in program.ops
            ]
            if node_of_op is not None:
                node_of_op = [int(x) for x in node_of_op]
            else:
                node_of_op = [
                    self.distribution.owner(*op.owner_tile) if n_nodes > 1 else 0
                    for op in program.ops
                ]
            keys = self.policy.rank(program, durations, node_of_op, machine)
        if len(keys) != n:
            raise ValueError(
                f"policy {self.policy.name!r} ranked {len(keys)} ops, expected {n}"
            )

        indegree = program.indegrees()
        ready_time = [0.0] * n
        start = [0.0] * n
        finish = [0.0] * n
        busy = [0.0] * n_nodes
        messages = 0
        comm_bytes = 0
        sent = [0] * n_nodes
        comm_time = [0.0] * n_nodes
        event_driven = network.event_driven
        transfer = machine.transfer_time()
        # Uniform model: dedup set for message *counting* only (arrival is
        # charged per edge).  Alpha-beta: the first release of a (producer,
        # destination node) pair injects a message event; later consumers of
        # the same pair reuse its arrival time (the runtime caches remote
        # tiles).  ``nic_free`` serializes each node's injections in
        # *dispatch order* — the order ops are popped by the greedy loop —
        # not in finish-time order.  That is the same no-lookahead greedy
        # discipline the engine applies to cores (an op assigned to a core
        # can idle it while a later-popped op would have been ready
        # sooner), kept deliberately so the list policy's dispatch order
        # stays the legacy one; a time-ordered NIC would need a global
        # message event queue and would reprice schedules.
        seen_transfers: set[Tuple[int, int]] = set()
        transfer_arrival: Dict[Tuple[int, int], float] = {}
        nic_free = [0.0] * n_nodes

        # Per-node event state: a heap of core-free events (free time, core
        # index) and a heap of ready ops ordered by (policy key, op id).
        core_of_op = [0] * n
        core_heaps: List[List[Tuple[float, int]]] = [
            [(0.0, c) for c in range(machine.cores_per_node)]
            for _ in range(n_nodes)
        ]
        for h in core_heaps:
            heapq.heapify(h)
        ready_heaps: List[List[Tuple[object, int]]] = [
            [] for _ in range(n_nodes)
        ]

        def push_ready(op_id: int) -> None:
            heapq.heappush(ready_heaps[node_of_op[op_id]], (keys[op_id], op_id))

        for op_id in range(n):
            if indegree[op_id] == 0:
                push_ready(op_id)

        scheduled = 0
        while scheduled < n:
            progressed = False
            for node in range(n_nodes):
                heap = ready_heaps[node]
                while heap:
                    _, op_id = heapq.heappop(heap)
                    core_free, core_idx = heapq.heappop(core_heaps[node])
                    t_start = max(core_free, ready_time[op_id])
                    t_finish = t_start + durations[op_id]
                    start[op_id] = t_start
                    finish[op_id] = t_finish
                    core_of_op[op_id] = core_idx
                    busy[node] += durations[op_id]
                    heapq.heappush(core_heaps[node], (t_finish, core_idx))
                    scheduled += 1
                    progressed = True
                    # Release successors; cross-node edges cost one transfer
                    # per (producer, destination node) — the runtime caches
                    # remote tiles.
                    for succ in program.successors(op_id):
                        dst = node_of_op[succ]
                        arrival = t_finish
                        if dst != node:
                            key = (op_id, dst)
                            if event_driven:
                                cached = transfer_arrival.get(key)
                                if cached is None:
                                    op = program.ops[op_id]
                                    n_bytes = network.message_bytes(op, machine)
                                    inject_start = max(
                                        t_finish + network.handshake_seconds(machine),
                                        nic_free[node],
                                    )
                                    injection = machine.injection_seconds(n_bytes)
                                    nic_free[node] = inject_start + injection
                                    cached = inject_start + network.message_seconds(
                                        n_bytes, machine
                                    )
                                    transfer_arrival[key] = cached
                                    messages += 1
                                    comm_bytes += n_bytes
                                    sent[node] += 1
                                    comm_time[node] += injection
                                arrival = cached
                            else:
                                arrival += transfer
                                if key not in seen_transfers:
                                    seen_transfers.add(key)
                                    messages += 1
                                    comm_bytes += machine.tile_bytes
                                    sent[node] += 1
                                    comm_time[node] += transfer
                        if arrival > ready_time[succ]:
                            ready_time[succ] = arrival
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            push_ready(succ)
            if not progressed:  # pragma: no cover - defensive (cycle)
                raise RuntimeError("engine stalled: the program has a cycle")

        schedule = Schedule(
            makespan=max(finish),
            start=start,
            finish=finish,
            node_of_task=node_of_op,
            busy_time_per_node=busy,
            messages=messages,
            comm_bytes=comm_bytes,
            core_of_task=core_of_op,
            comm_time_per_node=comm_time,
            messages_per_node=sent,
        )
        if tracer is not None:
            self._record_run(
                tracer, program, schedule, ready_time,
                transfer_arrival=transfer_arrival,
                seen_transfers=seen_transfers,
            )
        return schedule

    # ------------------------------------------------------------------ #
    # Trace recording (post-loop; see repro.obs.tracer)
    # ------------------------------------------------------------------ #
    def _record_run(
        self,
        tracer: Tracer,
        program: Program,
        schedule: Schedule,
        ready_time: List[float],
        *,
        transfer_arrival: Optional[Dict[Tuple[int, int], float]] = None,
        seen_transfers: Optional["set[Tuple[int, int]]"] = None,
        msg_bytes: Optional[List[int]] = None,
    ) -> None:
        """Hand one finished replay's state to the ambient tracer.

        Called strictly after the event loop: the arrays are the ones the
        Schedule already carries (shared, not copied) and the transfer
        timeline is a lazy closure over the loop's dedup structures —
        reconstructed only when an exporter or metrics reader asks for it
        — so recording cannot feed back into scheduling decisions and
        costs O(1) per replay.
        """
        transfers: Optional[Callable[[], List[TransferRecord]]] = None
        if transfer_arrival or seen_transfers:
            machine, network = self.machine, self.network
            arrival = transfer_arrival if transfer_arrival is not None else {}
            seen = seen_transfers if seen_transfers is not None else set()

            def _reconstruct() -> List[TransferRecord]:
                return _collect_transfers(
                    program,
                    machine,
                    network,
                    schedule.finish,
                    schedule.node_of_task,
                    arrival,
                    seen,
                    msg_bytes,
                )

            transfers = _reconstruct
        tracer.record_engine_run(
            program=program,
            policy=self.policy.name,
            network=self.network.name,
            n_nodes=self.machine.n_nodes,
            cores_per_node=self.machine.cores_per_node,
            makespan=schedule.makespan,
            start=schedule.start,
            finish=schedule.finish,
            node_of=schedule.node_of_task,
            core_of=schedule.core_of_task,
            ready_time=ready_time,
            transfers=transfers,
        )


def run_policy(
    program: Union[Program, TaskGraph],
    machine: Machine,
    *,
    policy: Union[str, SchedulingPolicy] = "list",
    distribution: Optional[BlockCyclicDistribution] = None,
    network: Union[str, NetworkModel] = "uniform",
    fast: Optional[bool] = None,
) -> Schedule:
    """One-shot convenience wrapper around :class:`SimulationEngine`."""
    return SimulationEngine(
        machine, distribution, policy=policy, network=network, fast=fast
    ).run(program)


def critical_path_seconds(
    program: Union[Program, TaskGraph],
    machine: Machine,
) -> float:
    """Duration-weighted critical path: the makespan lower bound no
    scheduling policy can beat on ``machine`` (unbounded cores, free
    communication)."""
    if isinstance(program, TaskGraph):
        program = Program.from_task_graph(program)
    if len(program) == 0:
        return 0.0
    return program.critical_path_np(
        machine.kernel_duration_table()[program.kernel_codes_np]
    )


def serial_seconds(
    program: Union[Program, TaskGraph],
    machine: Machine,
) -> float:
    """Single-core replay time: the makespan upper bound for any policy."""
    if isinstance(program, TaskGraph):
        program = Program.from_task_graph(program)
    # Summed in stream order (not numpy pairwise), bit-identical to the
    # legacy per-op accumulation.
    table = machine.kernel_duration_table()
    return sum(table[program.kernel_codes_np].tolist())
