"""Event-driven simulation engine: replay a Program under any policy.

The :class:`SimulationEngine` replaces the legacy
:class:`~repro.runtime.scheduler.ListScheduler`'s monolithic loop with an
engine/policy split:

* the **engine** owns the events — per-node core-free heaps (the event
  queues), dependency release, owner-computes mapping and the one-transfer
  communication model — and is policy-agnostic;
* the **policy** (:mod:`repro.runtime.policies`) only ranks ops; the
  engine pops ready ops in ``(policy key, op id)`` order, so tie-breaking
  is stable task-id ordering and schedules are bit-reproducible across
  runs and Python hash seeds.

With the ``list`` policy the engine reproduces the legacy scheduler's
makespans exactly (same priorities, same greedy assignment discipline,
same communication accounting); the other policies open scheduling as an
experiment axis on the same compiled :class:`~repro.ir.program.Program`.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple, Union

from repro.dag.task import TaskGraph
from repro.ir.program import Program
from repro.runtime.machine import Machine
from repro.runtime.policies import SchedulingPolicy, get_policy
from repro.runtime.scheduler import Schedule
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid


class SimulationEngine:
    """Replay compiled programs on a machine model under a pluggable policy.

    Parameters
    ----------
    machine:
        The machine model (node count, cores, kernel durations, network).
    distribution:
        Tile-to-node mapping; defaults to a 2D block-cyclic distribution on
        the near-square process grid for the machine's node count.
    policy:
        A :class:`~repro.runtime.policies.SchedulingPolicy` name or
        instance (default ``"list"``, the legacy behaviour).
    """

    def __init__(
        self,
        machine: Machine,
        distribution: Optional[BlockCyclicDistribution] = None,
        *,
        policy: Union[str, SchedulingPolicy] = "list",
    ) -> None:
        self.machine = machine
        self.policy = get_policy(policy)
        if distribution is None:
            distribution = BlockCyclicDistribution(
                ProcessGrid.for_square_matrix(machine.n_nodes)
            )
        if distribution.grid.size != machine.n_nodes:
            raise ValueError(
                f"distribution has {distribution.grid.size} processes but the machine "
                f"has {machine.n_nodes} nodes"
            )
        self.distribution = distribution

    # ------------------------------------------------------------------ #
    def run(self, program: Union[Program, TaskGraph]) -> Schedule:
        """Simulate one replay of ``program`` and return the schedule.

        Accepts a compiled :class:`~repro.ir.program.Program` (preferred —
        replayable for free) or a legacy :class:`~repro.dag.task.TaskGraph`
        (wrapped on the fly).
        """
        if isinstance(program, TaskGraph):
            program = Program.from_task_graph(program)
        n = len(program)
        machine = self.machine
        if n == 0:
            return Schedule(0.0, [], [], [], [0.0] * machine.n_nodes, 0, 0)

        durations = [machine.kernel_duration(op.kernel) for op in program.ops]
        node_of_op = [
            self.distribution.owner(*op.owner_tile) if machine.n_nodes > 1 else 0
            for op in program.ops
        ]
        keys = self.policy.rank(program, durations, node_of_op, machine)
        if len(keys) != n:
            raise ValueError(
                f"policy {self.policy.name!r} ranked {len(keys)} ops, expected {n}"
            )

        indegree = program.indegrees()
        ready_time = [0.0] * n
        start = [0.0] * n
        finish = [0.0] * n
        busy = [0.0] * machine.n_nodes
        messages = 0
        comm_bytes = 0
        transfer = machine.transfer_time()
        seen_transfers: set[Tuple[int, int]] = set()

        # Per-node event state: a heap of core-free events (free time, core
        # index) and a heap of ready ops ordered by (policy key, op id).
        core_of_op = [0] * n
        core_heaps: List[List[Tuple[float, int]]] = [
            [(0.0, c) for c in range(machine.cores_per_node)]
            for _ in range(machine.n_nodes)
        ]
        for h in core_heaps:
            heapq.heapify(h)
        ready_heaps: List[List[Tuple[object, int]]] = [
            [] for _ in range(machine.n_nodes)
        ]

        def push_ready(op_id: int) -> None:
            heapq.heappush(ready_heaps[node_of_op[op_id]], (keys[op_id], op_id))

        for op_id in range(n):
            if indegree[op_id] == 0:
                push_ready(op_id)

        scheduled = 0
        while scheduled < n:
            progressed = False
            for node in range(machine.n_nodes):
                heap = ready_heaps[node]
                while heap:
                    _, op_id = heapq.heappop(heap)
                    core_free, core_idx = heapq.heappop(core_heaps[node])
                    t_start = max(core_free, ready_time[op_id])
                    t_finish = t_start + durations[op_id]
                    start[op_id] = t_start
                    finish[op_id] = t_finish
                    core_of_op[op_id] = core_idx
                    busy[node] += durations[op_id]
                    heapq.heappush(core_heaps[node], (t_finish, core_idx))
                    scheduled += 1
                    progressed = True
                    # Release successors; cross-node edges cost one transfer
                    # per (producer, destination node) — the runtime caches
                    # remote tiles.
                    for succ in program.successors(op_id):
                        arrival = t_finish
                        if node_of_op[succ] != node:
                            arrival += transfer
                            key = (op_id, node_of_op[succ])
                            if key not in seen_transfers:
                                seen_transfers.add(key)
                                messages += 1
                                comm_bytes += machine.tile_bytes
                        if arrival > ready_time[succ]:
                            ready_time[succ] = arrival
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            push_ready(succ)
            if not progressed:  # pragma: no cover - defensive (cycle)
                raise RuntimeError("engine stalled: the program has a cycle")

        return Schedule(
            makespan=max(finish),
            start=start,
            finish=finish,
            node_of_task=node_of_op,
            busy_time_per_node=busy,
            messages=messages,
            comm_bytes=comm_bytes,
            core_of_task=core_of_op,
        )


def run_policy(
    program: Union[Program, TaskGraph],
    machine: Machine,
    *,
    policy: Union[str, SchedulingPolicy] = "list",
    distribution: Optional[BlockCyclicDistribution] = None,
) -> Schedule:
    """One-shot convenience wrapper around :class:`SimulationEngine`."""
    return SimulationEngine(machine, distribution, policy=policy).run(program)


def critical_path_seconds(
    program: Union[Program, TaskGraph],
    machine: Machine,
) -> float:
    """Duration-weighted critical path: the makespan lower bound no
    scheduling policy can beat on ``machine`` (unbounded cores, free
    communication)."""
    if isinstance(program, TaskGraph):
        program = Program.from_task_graph(program)
    return program.critical_path(
        weight_fn=lambda op: machine.kernel_duration(op.kernel)
    )


def serial_seconds(
    program: Union[Program, TaskGraph],
    machine: Machine,
) -> float:
    """Single-core replay time: the makespan upper bound for any policy."""
    if isinstance(program, TaskGraph):
        program = Program.from_task_graph(program)
    return sum(machine.kernel_duration(op.kernel) for op in program.ops)
