"""PaRSEC-like runtime simulator: machine model, engine, policies, drivers."""

from repro.runtime.machine import Machine
from repro.runtime.engine import (
    SimulationEngine,
    critical_path_seconds,
    run_policy,
    serial_seconds,
)
from repro.runtime.policies import (
    POLICIES,
    SchedulingPolicy,
    available_policies,
    get_policy,
)
from repro.runtime.scheduler import ListScheduler, Schedule
from repro.runtime.simulator import (
    SimulationResult,
    simulate_graph,
    simulate_ge2bnd,
    simulate_ge2val,
)

__all__ = [
    "Machine",
    "ListScheduler",
    "POLICIES",
    "Schedule",
    "SchedulingPolicy",
    "SimulationEngine",
    "SimulationResult",
    "available_policies",
    "critical_path_seconds",
    "get_policy",
    "run_policy",
    "serial_seconds",
    "simulate_graph",
    "simulate_ge2bnd",
    "simulate_ge2val",
]
