"""PaRSEC-like runtime simulator: machine model, engine, policies, networks.

The layers compose left to right: a :class:`Machine` prices tile kernels
and network hardware, a :class:`~repro.runtime.network.NetworkModel`
prices inter-node messages (``uniform`` legacy flat cost or
``alpha-beta`` message-level fidelity), a
:class:`~repro.runtime.policies.SchedulingPolicy` orders the ready queue,
and the :class:`~repro.runtime.engine.SimulationEngine` replays a compiled
:class:`~repro.ir.program.Program` through all three.  The drivers in
:mod:`~repro.runtime.simulator` wrap the stack into the GE2BND / GE2VAL
results the paper's figures report.
"""

from repro.runtime.machine import Machine
from repro.runtime.engine import (
    SimulationEngine,
    critical_path_seconds,
    run_policy,
    serial_seconds,
)
from repro.runtime.network import (
    NETWORK_MODELS,
    AlphaBetaNetwork,
    NetworkModel,
    UniformNetwork,
    available_networks,
    get_network_model,
)
from repro.runtime.policies import (
    POLICIES,
    SchedulingPolicy,
    available_policies,
    get_policy,
)
from repro.runtime.scheduler import ListScheduler, Schedule
from repro.runtime.batch import (
    BatchCandidate,
    BatchEngine,
    simulate_batch,
    simulate_resolved_batch,
)
from repro.runtime.simulator import (
    SimulationResult,
    simulate_graph,
    simulate_ge2bnd,
    simulate_ge2val,
)

__all__ = [
    "AlphaBetaNetwork",
    "BatchCandidate",
    "BatchEngine",
    "Machine",
    "ListScheduler",
    "NETWORK_MODELS",
    "NetworkModel",
    "POLICIES",
    "Schedule",
    "SchedulingPolicy",
    "SimulationEngine",
    "SimulationResult",
    "UniformNetwork",
    "available_networks",
    "available_policies",
    "critical_path_seconds",
    "get_network_model",
    "get_policy",
    "run_policy",
    "serial_seconds",
    "simulate_batch",
    "simulate_graph",
    "simulate_ge2bnd",
    "simulate_ge2val",
    "simulate_resolved_batch",
]
