"""PaRSEC-like runtime simulator: machine model, engine, policies, networks.

The layers compose left to right: a :class:`Machine` prices tile kernels
and network hardware, a :class:`~repro.runtime.network.NetworkModel`
prices inter-node messages (``uniform`` legacy flat cost or
``alpha-beta`` message-level fidelity), a
:class:`~repro.runtime.policies.SchedulingPolicy` orders the ready queue,
and the :class:`~repro.runtime.engine.SimulationEngine` replays a compiled
:class:`~repro.ir.program.Program` through all three.  The drivers in
:mod:`~repro.runtime.simulator` wrap the stack into the GE2BND / GE2VAL
results the paper's figures report.  On top, :mod:`~repro.runtime.scenario`
layers machine realism — heterogeneity, fault models, network noise — and
replays the same program across Monte-Carlo draws into a
:class:`~repro.runtime.scenario.MakespanDistribution`.
"""

from repro.runtime.machine import Machine
from repro.runtime.engine import (
    SimulationEngine,
    critical_path_seconds,
    run_policy,
    serial_seconds,
)
from repro.runtime.network import (
    NETWORK_MODELS,
    AlphaBetaNetwork,
    NetworkModel,
    UniformNetwork,
    available_networks,
    get_network_model,
)
from repro.runtime.policies import (
    POLICIES,
    SchedulingPolicy,
    available_policies,
    get_policy,
)
from repro.runtime.scheduler import ListScheduler, Schedule
from repro.runtime.batch import (
    BatchCandidate,
    BatchEngine,
    simulate_batch,
    simulate_resolved_batch,
)
from repro.runtime.simulator import (
    SimulationResult,
    simulate_graph,
    simulate_ge2bnd,
    simulate_ge2val,
)
from repro.runtime.faults import (
    FAULT_MODELS,
    NOISE_MODELS,
    FailStopFaults,
    FaultModel,
    LinkJitterNoise,
    NoFaults,
    NoiseModel,
    NoNoise,
    StragglerFaults,
    available_fault_models,
    available_noise_models,
    get_fault_model,
    get_noise_model,
)
from repro.runtime.scenario import (
    SCENARIOS,
    MakespanDistribution,
    Scenario,
    ScenarioReplayer,
    available_scenarios,
    get_scenario,
    run_scenario,
)

__all__ = [
    "AlphaBetaNetwork",
    "BatchCandidate",
    "BatchEngine",
    "FAULT_MODELS",
    "FailStopFaults",
    "FaultModel",
    "LinkJitterNoise",
    "Machine",
    "MakespanDistribution",
    "ListScheduler",
    "NETWORK_MODELS",
    "NOISE_MODELS",
    "NetworkModel",
    "NoFaults",
    "NoNoise",
    "NoiseModel",
    "POLICIES",
    "SCENARIOS",
    "Scenario",
    "ScenarioReplayer",
    "Schedule",
    "SchedulingPolicy",
    "SimulationEngine",
    "SimulationResult",
    "StragglerFaults",
    "UniformNetwork",
    "available_fault_models",
    "available_networks",
    "available_noise_models",
    "available_policies",
    "available_scenarios",
    "critical_path_seconds",
    "get_fault_model",
    "get_network_model",
    "get_noise_model",
    "get_policy",
    "get_scenario",
    "run_scenario",
    "serial_seconds",
    "simulate_batch",
    "simulate_graph",
    "simulate_ge2bnd",
    "simulate_ge2val",
    "simulate_resolved_batch",
]
