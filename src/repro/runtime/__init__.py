"""PaRSEC-like runtime simulator: machine model, list scheduler, drivers."""

from repro.runtime.machine import Machine
from repro.runtime.scheduler import ListScheduler, Schedule
from repro.runtime.simulator import (
    SimulationResult,
    simulate_graph,
    simulate_ge2bnd,
    simulate_ge2val,
)

__all__ = [
    "Machine",
    "ListScheduler",
    "Schedule",
    "SimulationResult",
    "simulate_graph",
    "simulate_ge2bnd",
    "simulate_ge2val",
]
