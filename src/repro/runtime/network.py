"""Message-level network models for the simulation engine.

Section VI-D of the paper lives or dies on communication: the greedy
top-level reduction tree roughly doubles the message count of the flat
tree on square cases, which is why flat can win distributed runs despite
exposing less parallelism.  Seeing that trade-off in *simulated time* (not
just message counts) needs a network model with per-message cost, which is
what this module provides:

* :class:`UniformNetwork` — the legacy model: every cross-node dependency
  edge delays its consumer by one flat ``machine.transfer_time()``; no
  per-message latency accumulation, no link occupancy.  The engine's
  original accounting, kept bit-identical (golden-pinned in the tests) so
  all existing determinism guarantees survive;
* :class:`AlphaBetaNetwork` — a message-level alpha-beta (Hockney) model:
  each deduplicated (producer op, destination node) transfer becomes one
  message costing ``alpha + bytes / beta``, with the payload derived from
  the producing op's written tile halves (so bandwidth cost scales with
  the tile size ``nb``), serialized injection through the sending node's
  NIC (per-node occupancy), and a configurable eager/rendezvous protocol
  (rendezvous adds a request/acknowledge handshake before injection).

Both models count messages with the same (producer op, destination node)
deduplication the static analysis uses
(:func:`repro.analysis.communication.communication_volume`), so engine and
analysis message counts always agree exactly — only the *time* charged per
message differs.

Select a model by name through :func:`get_network_model` (``"uniform"`` /
``"alpha-beta"``), the ``network=`` keyword of the engine and simulator
drivers, :attr:`repro.api.SvdPlan.network`, or ``--network`` on the CLI.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type, Union

import numpy as np

from repro.ir.program import Op, Program
from repro.runtime.machine import Machine


class NetworkModel:
    """Base class: how cross-node data dependencies turn into time.

    Subclasses set :attr:`name` and implement either nothing beyond the
    defaults (:class:`UniformNetwork`) or the message-cost hooks the
    engine's event loop calls (:class:`AlphaBetaNetwork`).  The
    :attr:`event_driven` flag selects the engine's code path: ``False``
    keeps the legacy fixed pre-charge per edge, ``True`` routes transfers
    through per-message injection events.
    """

    #: Registry name (e.g. ``"uniform"``); also used by the CLI.
    name: str = ""
    #: One-line description for ``repro networks``.
    description: str = ""
    #: Whether the engine should simulate per-message transfer events.
    event_driven: bool = False

    def message_bytes(self, op: Op, machine: Machine) -> int:
        """Payload of one message carrying ``op``'s output, in bytes.

        The default charges one full tile per message (the legacy
        accounting, also used by the static communication analysis).
        """
        return machine.tile_bytes

    def message_bytes_vector(
        self, program: Program, machine: Machine
    ) -> np.ndarray:
        """Per-op message payloads for the engine's structure-of-arrays path.

        Must agree element-wise with :meth:`message_bytes` on every op; the
        default is the flat full-tile charge.
        """
        return np.full(len(program), machine.tile_bytes, dtype=np.int64)

    def handshake_seconds(self, machine: Machine) -> float:
        """Pre-injection protocol delay of one message (default: none)."""
        return 0.0

    def message_seconds(self, n_bytes: int, machine: Machine) -> float:
        """Injection-start to arrival at the receiver.

        The default prices a message like the legacy flat model
        (latency + link bandwidth); event-driven subclasses refine it.
        """
        return machine.transfer_time(n_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class UniformNetwork(NetworkModel):
    """The legacy fixed-cost model (bit-identical to the pre-network engine).

    Every cross-node dependency edge delays its consumer by one flat
    ``machine.transfer_time()`` — even edges whose (producer, destination
    node) transfer was already counted, mirroring how the original engine
    charged arrival times.  There is no NIC occupancy and no per-message
    queueing, so makespans are independent of how many messages a node
    sends concurrently.
    """

    name = "uniform"
    description = (
        "legacy fixed cost: one flat transfer_time() per cross-node edge, "
        "no link occupancy (bit-identical to the pre-network engine)"
    )
    event_driven = False


class AlphaBetaNetwork(NetworkModel):
    """Alpha-beta (Hockney) cost with serialized per-node injection.

    One message per deduplicated (producer op, destination node) pair:

    * the payload is the producing op's written tile halves — each
      :data:`~repro.dag.task.DataItem` is half an ``nb x nb`` tile, so
      bandwidth cost scales with the tile size of the machine the program
      is replayed on;
    * the sending node's NIC injects messages one at a time
      (``machine.injection_seconds(bytes)`` each: per-message overhead +
      serialization at the injection rate), which is what makes a node
      that must scatter to many peers — e.g. the greedy top tree's panel
      heads — pay for it in simulated time, not just message counts;
    * the wire adds ``alpha + bytes / beta``
      (``machine.alpha_seconds`` + ``machine.beta_seconds(bytes)``);
    * ``eager=False`` switches to a rendezvous protocol: a request /
      acknowledge handshake (one round trip, ``2 * alpha``) must complete
      before injection starts, modeling an MPI implementation that cannot
      overlap large sends with compute.

    Subsequent consumers of the same (producer, destination) transfer
    reuse the first message's arrival time — the runtime caches remote
    tiles, exactly like the dedup rule of the legacy model.

    Messages enter a node's NIC queue in the engine's greedy *dispatch
    order* (the order producing ops are popped), not sorted by finish
    time — the same no-lookahead approximation the engine uses for core
    assignment; see the injection comment in
    :meth:`repro.runtime.engine.SimulationEngine.run`.
    """

    name = "alpha-beta"
    description = (
        "per-message alpha + bytes/beta cost, serialized NIC injection per "
        "node, optional rendezvous handshake (eager=False)"
    )
    event_driven = True

    def __init__(self, eager: bool = True) -> None:
        self.eager = eager

    def message_bytes(self, op: Op, machine: Machine) -> int:
        # Each written data item is one tile *half*; integer arithmetic so
        # payloads (and hence schedules) stay exactly reproducible.
        n_halves = max(1, len(op.writes))
        return machine.tile_bytes * n_halves // 2

    def message_bytes_vector(self, program, machine):
        # Vector form of message_bytes over the packed written-halves
        # column (identical integer arithmetic, element for element).
        n_halves = np.maximum(program.writes_count_np, 1)
        return machine.tile_bytes * n_halves // 2

    def handshake_seconds(self, machine: Machine) -> float:
        """Pre-injection delay of the rendezvous protocol (0 when eager)."""
        return 0.0 if self.eager else 2.0 * machine.alpha_seconds

    def message_seconds(self, n_bytes: int, machine: Machine) -> float:
        """Injection-start to arrival: overhead + serialization + alpha.

        Serialization is pipelined through the slower of the NIC injection
        rate and the link bandwidth, so a slow NIC stretches the message
        without double-charging the wire.
        """
        serialization = max(
            machine.beta_seconds(n_bytes),
            n_bytes / machine.preset.injection_rate_bytes_per_s,
        )
        return (
            machine.preset.injection_overhead_us * 1e-6
            + serialization
            + machine.alpha_seconds
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AlphaBetaNetwork(eager={self.eager})"


def resolved_message_bytes_vector(
    network: NetworkModel, program: Program, machine: Machine
) -> np.ndarray:
    """Per-op payload vector for the engine fast path, override-safe.

    A network subclass may override only the per-op :meth:`~NetworkModel.
    message_bytes` hook; in that case the inherited
    :meth:`~NetworkModel.message_bytes_vector` no longer agrees with it
    element-wise, and pricing through the vector would silently change
    schedules.  This resolver checks which hook is defined deepest in the
    MRO: if ``message_bytes`` is the more specific override, the vector is
    built from it per op (materializing the ops — correctness over speed);
    otherwise the vectorized form is authoritative.
    """
    mro = type(network).__mro__
    vec_cls = next(c for c in mro if "message_bytes_vector" in vars(c))
    per_op_cls = next(c for c in mro if "message_bytes" in vars(c))
    if mro.index(per_op_cls) < mro.index(vec_cls):
        return np.fromiter(
            (network.message_bytes(op, machine) for op in program.ops),
            dtype=np.int64,
            count=len(program),
        )
    return network.message_bytes_vector(program, machine)


#: Name -> network model class.  Instantiate via :func:`get_network_model`.
NETWORK_MODELS: Dict[str, Type[NetworkModel]] = {
    cls.name: cls for cls in (UniformNetwork, AlphaBetaNetwork)
}


def get_network_model(
    network: Union[str, NetworkModel], **kwargs
) -> NetworkModel:
    """Coerce a name or instance to a :class:`NetworkModel`.

    ``kwargs`` are constructor arguments for a *named* model (e.g.
    ``get_network_model("alpha-beta", eager=False)``); combining them with
    an already-built instance is rejected rather than silently ignored.
    """
    if isinstance(network, NetworkModel):
        if kwargs:
            raise ValueError(
                "keyword arguments only apply when the network is given by "
                f"name; got an instance of {type(network).__name__} plus "
                f"{sorted(kwargs)}"
            )
        return network
    try:
        cls = NETWORK_MODELS[str(network).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown network model {network!r}; available: {sorted(NETWORK_MODELS)}"
        ) from None
    return cls(**kwargs)


def available_networks() -> List[Tuple[str, str]]:
    """``(name, description)`` pairs, sorted by name (for the CLI listing)."""
    return [(name, NETWORK_MODELS[name].description) for name in sorted(NETWORK_MODELS)]
