"""Online list scheduler for task graphs on a multi-node machine.

The scheduler mimics the behaviour of the PaRSEC runtime the paper relies
on:

* **owner computes** — every task runs on the node that owns the tile it
  writes (2D block-cyclic distribution), exactly how DPLASMA maps tasks;
* **greedy, priority-driven scheduling** — whenever a core is free, it picks
  the ready task with the highest priority; priorities are *bottom levels*
  (longest downstream path), which approximates PaRSEC's priority function
  and the data-reuse heuristic closely enough for performance shapes;
* **communication** — an edge whose producer and consumer live on different
  nodes delays the consumer by one tile transfer (latency + size/bandwidth)
  and is charged to the communication-volume statistics.  Transfers of the
  same produced data item to the same destination node are counted once
  (the runtime caches remote tiles).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dag.task import TaskGraph
from repro.runtime.machine import Machine
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid


@dataclass
class Schedule:
    """Result of scheduling a task graph.

    Attributes
    ----------
    makespan:
        Total simulated time in seconds.
    start, finish:
        Per-task start and finish times (indexed by task id).
    node_of_task:
        Node each task ran on.
    busy_time_per_node:
        Total compute seconds spent by each node.
    messages, comm_bytes:
        Number of inter-node messages and total bytes moved.
    """

    makespan: float
    start: List[float]
    finish: List[float]
    node_of_task: List[int]
    busy_time_per_node: List[float]
    messages: int
    comm_bytes: int
    #: Core index (within its node) each task ran on; filled by the list
    #: scheduler and used by the Gantt-chart / utilization tooling in
    #: :mod:`repro.runtime.trace`.  ``None`` for schedules built by hand.
    core_of_task: Optional[List[int]] = None

    @property
    def n_tasks(self) -> int:
        return len(self.start)

    def node_utilization(self, machine: Machine) -> List[float]:
        """Fraction of available core-seconds each node spent computing."""
        if self.makespan <= 0:
            return [0.0 for _ in self.busy_time_per_node]
        capacity = machine.cores_per_node * self.makespan
        return [busy / capacity for busy in self.busy_time_per_node]


class ListScheduler:
    """Greedy list scheduler with owner-computes mapping.

    Parameters
    ----------
    machine:
        The machine model (node count, cores, kernel durations, network).
    distribution:
        Tile-to-node mapping; defaults to a 2D block-cyclic distribution on
        the near-square process grid for the machine's node count.
    """

    #: Recognised priority policies (see ``priority`` constructor argument).
    PRIORITIES = ("bottom-level", "fifo", "weight")

    def __init__(
        self,
        machine: Machine,
        distribution: Optional[BlockCyclicDistribution] = None,
        *,
        priority: str = "bottom-level",
    ) -> None:
        self.machine = machine
        if priority not in self.PRIORITIES:
            raise ValueError(
                f"unknown priority policy {priority!r}; available: {self.PRIORITIES}"
            )
        self.priority_policy = priority
        if distribution is None:
            distribution = BlockCyclicDistribution(
                ProcessGrid.for_square_matrix(machine.n_nodes)
            )
        if distribution.grid.size != machine.n_nodes:
            raise ValueError(
                f"distribution has {distribution.grid.size} processes but the machine "
                f"has {machine.n_nodes} nodes"
            )
        self.distribution = distribution

    # ------------------------------------------------------------------ #
    def _bottom_levels(self, graph: TaskGraph, durations: List[float]) -> List[float]:
        """Longest downstream path (inclusive) of each task, in seconds."""
        levels = [0.0] * len(graph)
        for tid in reversed(graph.topological_order()):
            succ_best = 0.0
            for s in graph.successors[tid]:
                if levels[s] > succ_best:
                    succ_best = levels[s]
            levels[tid] = durations[tid] + succ_best
        return levels

    def run(self, graph: TaskGraph) -> Schedule:
        """Simulate the execution of ``graph`` and return the schedule."""
        n = len(graph)
        machine = self.machine
        if n == 0:
            return Schedule(0.0, [], [], [], [0.0] * machine.n_nodes, 0, 0)

        durations = [machine.kernel_duration(t.kernel) for t in graph.tasks]
        if self.priority_policy == "bottom-level":
            priority = self._bottom_levels(graph, durations)
        elif self.priority_policy == "weight":
            priority = durations
        else:  # "fifo": earlier tasks first (insertion order is topological)
            priority = [float(n - tid) for tid in range(n)]
        node_of_task = [
            self.distribution.owner(*t.owner_tile) if machine.n_nodes > 1 else 0
            for t in graph.tasks
        ]

        indegree = [len(graph.predecessors[tid]) for tid in range(n)]
        ready_time = [0.0] * n
        start = [0.0] * n
        finish = [0.0] * n
        busy = [0.0] * machine.n_nodes
        messages = 0
        comm_bytes = 0
        transfer = machine.transfer_time()
        seen_transfers: set[Tuple[int, int]] = set()

        # Per-node: heap of (free time, core index), heap of ready tasks.
        core_of_task = [0] * n
        core_heaps: List[List[Tuple[float, int]]] = [
            [(0.0, c) for c in range(machine.cores_per_node)]
            for _ in range(machine.n_nodes)
        ]
        for h in core_heaps:
            heapq.heapify(h)
        ready_heaps: List[List[Tuple[float, int]]] = [[] for _ in range(machine.n_nodes)]

        def push_ready(tid: int) -> None:
            heapq.heappush(ready_heaps[node_of_task[tid]], (-priority[tid], tid))

        for tid in range(n):
            if indegree[tid] == 0:
                push_ready(tid)

        scheduled = 0
        while scheduled < n:
            progressed = False
            for node in range(machine.n_nodes):
                heap = ready_heaps[node]
                while heap:
                    _, tid = heapq.heappop(heap)
                    core_free, core_idx = heapq.heappop(core_heaps[node])
                    t_start = max(core_free, ready_time[tid])
                    t_finish = t_start + durations[tid]
                    start[tid] = t_start
                    finish[tid] = t_finish
                    core_of_task[tid] = core_idx
                    busy[node] += durations[tid]
                    heapq.heappush(core_heaps[node], (t_finish, core_idx))
                    scheduled += 1
                    progressed = True
                    # Release successors.
                    for succ in graph.successors[tid]:
                        arrival = t_finish
                        if node_of_task[succ] != node:
                            arrival += transfer
                            key = (tid, node_of_task[succ])
                            if key not in seen_transfers:
                                seen_transfers.add(key)
                                messages += 1
                                comm_bytes += machine.tile_bytes
                        if arrival > ready_time[succ]:
                            ready_time[succ] = arrival
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            push_ready(succ)
            if not progressed:  # pragma: no cover - defensive (cycle)
                raise RuntimeError("scheduler stalled: the task graph has a cycle")

        return Schedule(
            makespan=max(finish),
            start=start,
            finish=finish,
            node_of_task=node_of_task,
            busy_time_per_node=busy,
            messages=messages,
            comm_bytes=comm_bytes,
            core_of_task=core_of_task,
        )
