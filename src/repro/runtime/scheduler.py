"""Schedule container and the legacy list-scheduler front-end.

The scheduling loop that used to live here has moved into the
engine/policy/network split of :mod:`repro.runtime.engine`,
:mod:`repro.runtime.policies` and :mod:`repro.runtime.network`: the
event-driven :class:`~repro.runtime.engine.SimulationEngine` owns core
events and dependency release, a pluggable
:class:`~repro.runtime.policies.SchedulingPolicy` ranks the ready queue,
and a :class:`~repro.runtime.network.NetworkModel` prices cross-node
transfers (legacy ``uniform`` flat cost, or message-level ``alpha-beta``
with NIC occupancy).  This module keeps the two pieces every call site
still needs:

* :class:`Schedule` — the result record (makespan, per-task times, node
  mapping, communication statistics);
* :class:`ListScheduler` — the backward-compatible front-end, now a thin
  shell that maps its ``priority`` argument onto the corresponding policy
  (``bottom-level`` → ``list``, ``fifo`` → ``fifo``, ``weight`` →
  ``weight``) and delegates to the engine.  With the default priority it
  reproduces the original greedy bottom-level list scheduler bit for bit.

The behaviour still mimics the PaRSEC runtime the paper relies on:
owner-computes task mapping over a 2D block-cyclic distribution, greedy
priority-driven scheduling, and one deduplicated tile transfer per
(producer, destination node) pair — however the network model prices it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dag.task import TaskGraph
from repro.runtime.machine import Machine
from repro.tiles.distribution import BlockCyclicDistribution


@dataclass
class Schedule:
    """Result of scheduling a task graph / program.

    Attributes
    ----------
    makespan:
        Total simulated time in seconds.
    start, finish:
        Per-task start and finish times (indexed by task id).
    node_of_task:
        Node each task ran on.
    busy_time_per_node:
        Total compute seconds spent by each node.
    messages, comm_bytes:
        Number of inter-node messages and total bytes moved.
    """

    makespan: float
    start: List[float]
    finish: List[float]
    node_of_task: List[int]
    busy_time_per_node: List[float]
    messages: int
    comm_bytes: int
    #: Core index (within its node) each task ran on; filled by the
    #: simulation engine and used by the Gantt-chart / utilization tooling
    #: in :mod:`repro.runtime.trace`.  ``None`` for schedules built by hand.
    core_of_task: Optional[List[int]] = None
    #: Seconds each node spent sending (NIC injection time under the
    #: alpha-beta network model; ``sent * transfer_time`` under uniform).
    #: ``None`` for schedules built by hand.
    comm_time_per_node: Optional[List[float]] = None
    #: Deduplicated messages *sent* by each node (indexed by rank); sums to
    #: ``messages``.  ``None`` for schedules built by hand.
    messages_per_node: Optional[List[int]] = None

    @property
    def comm_seconds(self) -> float:
        """Total sending time across all nodes (0.0 when not tracked)."""
        return sum(self.comm_time_per_node or ())

    @property
    def n_tasks(self) -> int:
        return len(self.start)

    def node_utilization(self, machine: Machine) -> List[float]:
        """Fraction of available core-seconds each node spent computing."""
        from repro.obs.util import node_busy_fractions

        return node_busy_fractions(
            self.busy_time_per_node, self.makespan, machine.cores_per_node
        )


class ListScheduler:
    """Greedy list scheduler with owner-computes mapping (legacy front-end).

    Parameters
    ----------
    machine:
        The machine model (node count, cores, kernel durations, network).
    distribution:
        Tile-to-node mapping; defaults to a 2D block-cyclic distribution on
        the near-square process grid for the machine's node count.
    priority:
        Legacy priority name; mapped onto the engine policies
        (see :data:`repro.runtime.policies.POLICIES`).
    """

    #: Recognised priority policies (see ``priority`` constructor argument).
    PRIORITIES = ("bottom-level", "fifo", "weight")

    #: Legacy priority name -> engine policy name.
    _POLICY_OF_PRIORITY = {
        "bottom-level": "list",
        "fifo": "fifo",
        "weight": "weight",
    }

    def __init__(
        self,
        machine: Machine,
        distribution: Optional[BlockCyclicDistribution] = None,
        *,
        priority: str = "bottom-level",
    ) -> None:
        from repro.runtime.engine import SimulationEngine

        if priority not in self.PRIORITIES:
            raise ValueError(
                f"unknown priority policy {priority!r}; available: {self.PRIORITIES}"
            )
        self.machine = machine
        self.priority_policy = priority
        self._engine = SimulationEngine(
            machine, distribution, policy=self._POLICY_OF_PRIORITY[priority]
        )
        self.distribution = self._engine.distribution

    def run(self, graph: TaskGraph) -> Schedule:
        """Simulate the execution of ``graph`` and return the schedule."""
        return self._engine.run(graph)
