"""Machine model used by the runtime simulator.

A :class:`Machine` is a set of identical multicore nodes connected by a
network, described by a :class:`~repro.config.MachinePreset` (the default
is the paper's ``miriel`` node: 24 Haswell cores, 37 GFlop/s GEMM per core,
642 GFlop/s per node, InfiniBand QDR at 40 Gb/s).

The machine translates tile kernels into durations and tile transfers into
communication delays; everything else (who runs what, when) is the
scheduler's job.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.config import MIRIEL, MachinePreset
from repro.kernels.costs import (
    KERNEL_LIST,
    KernelName,
    kernel_efficiency,
    kernel_flops,
)


@lru_cache(maxsize=256)
def _kernel_duration_table(machine: "Machine") -> np.ndarray:
    """Kernel durations indexed by kernel code, cached per machine.

    ``Machine`` is a frozen (hashable) dataclass, so equal machines share
    one table; the engine's structure-of-arrays path prices a whole
    program with a single 12-entry gather instead of one
    :meth:`Machine.kernel_duration` call per op.
    """
    table = np.array(
        [machine.kernel_duration(k) for k in KERNEL_LIST], dtype=np.float64
    )
    table.setflags(write=False)
    return table


@dataclass(frozen=True)
class Machine:
    """A homogeneous cluster of multicore nodes.

    Parameters
    ----------
    n_nodes:
        Number of nodes (1 for the shared-memory experiments).
    cores_per_node:
        Cores used for computation on each node.  The paper leaves one core
        free for MPI progress on distributed square runs; pass 23 to mimic
        that.
    tile_size:
        Tile size ``nb``; kernel durations scale as ``nb^3``.
    preset:
        Hardware characteristics (GEMM peaks, network).
    inner_block:
        Inner blocking ``ib`` of the TS/TT kernels, or ``None`` for the
        calibration value (the paper's ``ib = 32``).  Only affects kernel
        efficiencies (see
        :func:`repro.kernels.costs.inner_block_efficiency_factor`).
    node_slowdowns, core_slowdowns:
        Optional speed heterogeneity: a factor ``>= 1.0`` per node /
        per core (``1.25`` = 25% slower), of length exactly ``n_nodes`` /
        ``cores_per_node``; ``None`` (the default) is the homogeneous
        machine.  Kernel-duration *tables* stay nominal — the factors are
        applied by the scenario replay layer
        (:mod:`repro.runtime.scenario`), which the engine routes
        heterogeneous machines through automatically.  Build these from a
        named pattern with :meth:`repro.runtime.scenario.Scenario.
        apply_to_machine` rather than by hand.
    """

    n_nodes: int = 1
    cores_per_node: int = 24
    tile_size: int = 160
    preset: MachinePreset = MIRIEL
    inner_block: Optional[int] = None
    node_slowdowns: Optional[Tuple[float, ...]] = None
    core_slowdowns: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        if self.tile_size < 1:
            raise ValueError("tile_size must be >= 1")
        if self.inner_block is not None and self.inner_block < 1:
            raise ValueError("inner_block must be >= 1")
        for attr, count, what in (
            ("node_slowdowns", self.n_nodes, "n_nodes"),
            ("core_slowdowns", self.cores_per_node, "cores_per_node"),
        ):
            factors = getattr(self, attr)
            if factors is None:
                continue
            factors = tuple(float(f) for f in factors)
            if len(factors) != count:
                raise ValueError(
                    f"{attr} must have length {what}={count}, got {len(factors)}"
                )
            for f in factors:
                if not np.isfinite(f) or f < 1.0:
                    raise ValueError(
                        f"{attr} entries must be finite and >= 1.0, got {f}"
                    )
            object.__setattr__(self, attr, factors)

    # ------------------------------------------------------------------ #
    # Heterogeneity
    # ------------------------------------------------------------------ #
    @property
    def heterogeneous(self) -> bool:
        """Whether any node or core runs slower than nominal.

        All-ones slowdown tuples count as homogeneous; the engine keeps
        such machines on its fast path.
        """
        return bool(
            (self.node_slowdowns and any(f != 1.0 for f in self.node_slowdowns))
            or (self.core_slowdowns and any(f != 1.0 for f in self.core_slowdowns))
        )

    def node_factors(self) -> Optional[Tuple[float, ...]]:
        """Per-node duration factors, or ``None`` when all nominal."""
        ns = self.node_slowdowns
        if ns is None or all(f == 1.0 for f in ns):
            return None
        return ns

    def core_factors(self) -> Optional[Tuple[float, ...]]:
        """Per-core duration factors, or ``None`` when all nominal."""
        cs = self.core_slowdowns
        if cs is None or all(f == 1.0 for f in cs):
            return None
        return cs

    # ------------------------------------------------------------------ #
    # Compute model
    # ------------------------------------------------------------------ #
    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.cores_per_node

    @property
    def core_rate_gflops(self) -> float:
        """Per-core sustainable rate when the whole node is busy.

        The node aggregate GEMM peak (642 GFlop/s on miriel) is lower than
        ``24 x 37`` because of shared memory bandwidth; dividing it evenly
        over the cores gives the sustained per-core rate used for kernel
        durations.
        """
        per_core_from_node = self.preset.node_gemm_gflops / self.preset.cores_per_node
        return min(self.preset.core_gemm_gflops, per_core_from_node)

    def kernel_duration(self, kernel: KernelName) -> float:
        """Wall-clock seconds of one tile kernel on one core.

        The efficiency of every kernel depends on the tile size (small tiles
        have a worse surface-to-volume ratio, see
        :func:`repro.kernels.costs.tile_efficiency_factor`), which is what
        creates the GE2BND side of the tile-size trade-off of Section VI-B.
        """
        flops = kernel_flops(kernel, self.tile_size)
        rate = self.core_rate_gflops * 1e9 * kernel_efficiency(
            kernel, self.tile_size, self.inner_block
        )
        return flops / rate

    def kernel_duration_table(self) -> np.ndarray:
        """Durations of all kernels, indexed by kernel code (read-only).

        The code order is :data:`repro.kernels.costs.KERNEL_LIST`; the
        table is cached per (equal) machine, so gathering it through a
        program's ``kernel_codes_np`` column prices every op without
        re-evaluating the efficiency model.
        """
        return _kernel_duration_table(self)

    @property
    def node_peak_gflops(self) -> float:
        """Aggregate GEMM peak of one node (GFlop/s)."""
        return self.core_rate_gflops * self.cores_per_node

    @property
    def peak_gflops(self) -> float:
        """Aggregate GEMM peak of the whole machine (GFlop/s)."""
        return self.node_peak_gflops * self.n_nodes

    # ------------------------------------------------------------------ #
    # Communication model
    # ------------------------------------------------------------------ #
    @property
    def tile_bytes(self) -> int:
        """Size of one tile in bytes (double precision)."""
        return self.tile_size * self.tile_size * 8

    def transfer_time(self, n_bytes: Optional[int] = None) -> float:
        """Seconds to move ``n_bytes`` (default: one tile) between two nodes."""
        if self.n_nodes == 1:
            return 0.0
        if n_bytes is None:
            n_bytes = self.tile_bytes
        bandwidth = self.preset.network_bandwidth_bytes_per_s
        return self.preset.network_latency_us * 1e-6 + n_bytes / bandwidth

    @property
    def alpha_seconds(self) -> float:
        """Per-message network latency (the alpha of the alpha-beta model)."""
        return self.preset.network_latency_us * 1e-6

    def beta_seconds(self, n_bytes: int) -> float:
        """Wire time of ``n_bytes`` at the link bandwidth (the beta term)."""
        return n_bytes / self.preset.network_bandwidth_bytes_per_s

    def injection_seconds(self, n_bytes: int) -> float:
        """Seconds the sending NIC is occupied pushing one ``n_bytes`` message.

        Per-message overhead plus serialization at the NIC injection rate;
        concurrent sends from the same node queue behind each other for this
        long in the alpha-beta model (see :mod:`repro.runtime.network`).
        """
        return (
            self.preset.injection_overhead_us * 1e-6
            + n_bytes / self.preset.injection_rate_bytes_per_s
        )

    def with_nodes(self, n_nodes: int) -> "Machine":
        """Copy of this machine with a different node count (scaling studies).

        Per-node slowdowns are cycled block-cyclically to the new node
        count (the same expansion rule scenarios use); per-core slowdowns
        carry over unchanged.
        """
        ns = self.node_slowdowns
        if ns is not None:
            ns = tuple(ns[i % len(ns)] for i in range(n_nodes))
        return Machine(
            n_nodes=n_nodes,
            cores_per_node=self.cores_per_node,
            tile_size=self.tile_size,
            preset=self.preset,
            inner_block=self.inner_block,
            node_slowdowns=ns,
            core_slowdowns=self.core_slowdowns,
        )
