"""Execution-trace tooling: utilization reports and ASCII Gantt charts.

The simulation engine records, for every task, its start/finish time and
the node / core it ran on (plus per-node message counts and sending time
under the network models).  This module turns that raw schedule into the
kind of report one would pull out of a PaRSEC trace: per-node
utilization, idle-time breakdown, and a terminal-friendly Gantt chart
that makes the pipeline bubbles of the different reduction trees visible
at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dag.task import TaskGraph
from repro.obs.export import KERNEL_GLYPHS as _KERNEL_GLYPHS
from repro.obs.util import idle_seconds_per_node
from repro.runtime.machine import Machine
from repro.runtime.scheduler import Schedule


@dataclass(frozen=True)
class UtilizationReport:
    """Compute-utilization summary of one simulated run.

    Attributes
    ----------
    makespan:
        Simulated wall-clock seconds.
    busy_fraction_per_node:
        Fraction of available core-seconds each node spent computing.
    overall_busy_fraction:
        Machine-wide fraction of core-seconds spent computing.
    idle_seconds:
        Total idle core-seconds across the machine.
    critical_kernel:
        Kernel name with the most aggregate busy time.
    """

    makespan: float
    busy_fraction_per_node: List[float]
    overall_busy_fraction: float
    idle_seconds: float
    critical_kernel: str


def utilization_report(
    schedule: Schedule, graph: TaskGraph, machine: Machine
) -> UtilizationReport:
    """Build a :class:`UtilizationReport` from a schedule and its graph."""
    per_node = schedule.node_utilization(machine)
    capacity = machine.total_cores * schedule.makespan
    busy = sum(schedule.busy_time_per_node)
    per_kernel: Dict[str, float] = {}
    for task in graph.tasks:
        duration = schedule.finish[task.id] - schedule.start[task.id]
        per_kernel[task.kernel.value] = per_kernel.get(task.kernel.value, 0.0) + duration
    critical = max(per_kernel, key=per_kernel.get) if per_kernel else ""
    return UtilizationReport(
        makespan=schedule.makespan,
        busy_fraction_per_node=per_node,
        overall_busy_fraction=busy / capacity if capacity > 0 else 0.0,
        idle_seconds=max(capacity - busy, 0.0),
        critical_kernel=critical,
    )


def gantt_chart(
    schedule: Schedule,
    graph: TaskGraph,
    machine: Machine,
    *,
    width: int = 100,
    max_lanes: Optional[int] = 32,
) -> str:
    """Render the schedule as an ASCII Gantt chart (one lane per core).

    Each column of the chart is ``makespan / width`` seconds; the glyph in a
    cell is the kernel that occupied the core for the majority of that slice
    (``.`` means idle).  Lanes are labelled ``n<node>c<core>``.

    Parameters
    ----------
    width:
        Number of time columns.
    max_lanes:
        Truncate the chart after this many core lanes (``None`` = no limit).
    """
    if schedule.core_of_task is None:
        raise ValueError("schedule carries no core assignment (was it built by hand?)")
    if width < 1:
        raise ValueError("width must be >= 1")
    makespan = schedule.makespan
    if makespan <= 0 or len(graph) == 0:
        return "(empty schedule)"

    lanes: Dict[Tuple[int, int], List[Tuple[float, float, str]]] = {}
    for task in graph.tasks:
        key = (schedule.node_of_task[task.id], schedule.core_of_task[task.id])
        lanes.setdefault(key, []).append(
            (schedule.start[task.id], schedule.finish[task.id], task.kernel.value)
        )

    lines: List[str] = []
    header = f"time -> 0 .. {makespan:.4g}s  ({width} columns, '.' = idle)"
    lines.append(header)
    legend = "  ".join(f"{glyph}={name}" for name, glyph in sorted(_KERNEL_GLYPHS.items()))
    lines.append("legend: " + legend)
    dt = makespan / width
    shown = 0
    for key in sorted(lanes):
        if max_lanes is not None and shown >= max_lanes:
            lines.append(f"... ({len(lanes) - shown} more core lanes not shown)")
            break
        node, core = key
        row = []
        intervals = sorted(lanes[key])
        for col in range(width):
            t0, t1 = col * dt, (col + 1) * dt
            best_kernel, best_overlap = None, 0.0
            for s, f, kernel in intervals:
                overlap = min(f, t1) - max(s, t0)
                if overlap > best_overlap:
                    best_overlap = overlap
                    best_kernel = kernel
            row.append(_KERNEL_GLYPHS.get(best_kernel, "#") if best_kernel else ".")
        lines.append(f"n{node:02d}c{core:02d} |" + "".join(row) + "|")
        shown += 1
    return "\n".join(lines)


def idle_time_by_node(schedule: Schedule, machine: Machine) -> List[float]:
    """Idle core-seconds of each node over the makespan."""
    return idle_seconds_per_node(
        schedule.busy_time_per_node, schedule.makespan, machine.cores_per_node
    )
