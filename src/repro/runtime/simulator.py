"""High-level simulation drivers.

``simulate_ge2bnd`` / ``simulate_ge2val`` resolve the requested algorithm
at the requested tile shape into a compiled
:class:`~repro.ir.program.Program` (through the shared in-process program
cache, so repeated simulations of the same DAG shape trace it only once),
replay it on the event-driven :class:`~repro.runtime.engine.SimulationEngine`
under the requested scheduling policy and network model (legacy
``uniform`` flat transfer cost, or message-level ``alpha-beta`` — see
:mod:`repro.runtime.network`), and convert the makespan into the GFlop/s
numbers the paper's figures report (normalising by the
direct-bidiagonalization operation count, as the paper does).  GE2VAL adds
the single-node BND2BD and BD2VAL stages on top of the simulated GE2BND
time, reproducing the paper's setup where those two stages are not
distributed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.dag.task import TaskGraph
from repro.ir.compiler import get_program
from repro.ir.program import Program
from repro.models.flops import (
    bd2val_flops,
    bnd2bd_flops,
    ge2bnd_reported_flops,
    ge2val_reported_flops,
)
from repro.runtime.machine import Machine
from repro.runtime.engine import SimulationEngine
from repro.runtime.network import NetworkModel
from repro.runtime.policies import SchedulingPolicy
from repro.runtime.scenario import (
    MakespanDistribution,
    Scenario,
    get_scenario,
    run_scenario,
)
from repro.runtime.scheduler import Schedule
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid
from repro.tiles.layout import ceil_div
from repro.trees.base import ReductionTree


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated run.

    ``gflops`` uses the paper's reporting convention (direct
    bidiagonalization flop count divided by the simulated time).
    """

    m: int
    n: int
    p: int
    q: int
    algorithm: str
    tree: str
    machine_nodes: int
    time_seconds: float
    gflops: float
    n_tasks: int
    messages: int
    comm_bytes: int
    ge2bnd_seconds: float
    post_seconds: float = 0.0
    policy: str = "list"
    #: Network model the engine priced transfers with (see
    #: :data:`repro.runtime.network.NETWORK_MODELS`).
    network: str = "uniform"
    #: Total sending time across all nodes (NIC injection seconds under the
    #: alpha-beta model; ``sent * transfer_time`` under uniform).
    comm_seconds: float = 0.0
    #: The full per-task schedule behind ``time_seconds``; carried so the
    #: observability layer (``RunResult.metrics``, Gantt export) can derive
    #: utilization without re-simulating.  Excluded from equality/repr —
    #: two results are the same outcome if their scalars agree.
    schedule: Optional[Schedule] = field(default=None, compare=False, repr=False)
    #: Scenario name the run was simulated under, or ``None`` for the
    #: default (ideal-machine) path.
    scenario: Optional[str] = None
    #: Monte-Carlo makespan distribution for stochastic scenarios (the
    #: headline ``time_seconds`` stays the nominal replay).  Excluded from
    #: equality — compare ``.distribution`` directly in determinism tests.
    distribution: Optional[MakespanDistribution] = field(
        default=None, compare=False, repr=False
    )

    def __str__(self) -> str:  # pragma: no cover - human-readable report
        return (
            f"{self.algorithm:9s} {self.tree:8s} m={self.m:>8d} n={self.n:>6d} "
            f"nodes={self.machine_nodes:>3d} time={self.time_seconds:8.3f}s "
            f"gflops={self.gflops:8.1f}"
        )


def _resolve_sim_tree(
    tree: Union[str, ReductionTree],
    machine: Machine,
    p: int,
    q: int,
    grid: Optional[ProcessGrid] = None,
) -> ReductionTree:
    """Resolve a tree spec for simulation purposes.

    Delegates to the shared resolver (:mod:`repro.api.resolver`): string
    names map to the shared-memory trees; for multi-node machines the tree
    is wrapped into the paper's hierarchical configuration (flat top tree
    for FlatTS/FlatTT, greedy top tree for Greedy/Auto) over ``grid`` (or
    the default grid for the tile shape).  Imported lazily to keep
    :mod:`repro.runtime` importable on its own.
    """
    from repro.api.resolver import resolve_distributed_tree

    return resolve_distributed_tree(
        tree,
        n_nodes=machine.n_nodes,
        n_cores=machine.cores_per_node,
        p=p,
        q=q,
        grid=grid,
    )


def _policy_name(policy: Union[str, SchedulingPolicy]) -> str:
    return policy if isinstance(policy, str) else policy.name


def _network_name(network: Union[str, NetworkModel]) -> str:
    return network if isinstance(network, str) else network.name


def _default_grid(machine: Machine, p: int, q: int) -> ProcessGrid:
    """The process grid the paper uses: near-square for square matrices,
    ``nodes x 1`` for tall-and-skinny matrices."""
    from repro.api.resolver import default_grid

    return default_grid(machine.n_nodes, p, q)


def simulate_graph(
    graph: Union[TaskGraph, Program],
    machine: Machine,
    distribution: Optional[BlockCyclicDistribution] = None,
    *,
    policy: Union[str, SchedulingPolicy] = "list",
    network: Union[str, NetworkModel] = "uniform",
) -> Schedule:
    """Replay an explicit task graph / program on the simulation engine."""
    return SimulationEngine(
        machine, distribution, policy=policy, network=network
    ).run(graph)


@dataclass(frozen=True)
class _Ge2bndSetup:
    """Everything :func:`simulate_ge2bnd` derives before the engine runs.

    Shared with the batch layer (:mod:`repro.runtime.batch`), which needs
    the identical program/grid/tree resolution per candidate but replays
    many candidates through one engine pass.
    """

    m: int
    n: int
    p: int
    q: int
    algorithm: str
    tree_name: str
    grid: ProcessGrid
    distribution: BlockCyclicDistribution
    program: Program


def _ge2bnd_setup(
    m: int,
    n: int,
    machine: Machine,
    *,
    tree: Union[str, ReductionTree] = "auto",
    algorithm: str = "bidiag",
    grid: Optional[ProcessGrid] = None,
) -> _Ge2bndSetup:
    """Validate and resolve one GE2BND simulation request (no engine run)."""
    if m < n:
        raise ValueError(f"expected m >= n, got {m}x{n}")
    nb = machine.tile_size
    p, q = ceil_div(m, nb), ceil_div(n, nb)
    if grid is None:
        grid = _default_grid(machine, p, q)
    elif grid.size != machine.n_nodes:
        raise ValueError(
            f"process grid {grid.rows}x{grid.cols} does not cover "
            f"{machine.n_nodes} node(s)"
        )
    distribution = BlockCyclicDistribution(grid)
    tree_obj = _resolve_sim_tree(tree, machine, p, q, grid)
    tree_name = tree if isinstance(tree, str) else type(tree).__name__

    algorithm = algorithm.lower()
    if algorithm not in ("bidiag", "rbidiag"):
        raise ValueError(f"unknown algorithm {algorithm!r} (use 'bidiag' or 'rbidiag')")
    program = get_program(
        algorithm, p, q, tree_obj, n_cores=machine.cores_per_node, grid_rows=grid.rows
    )
    return _Ge2bndSetup(
        m=m,
        n=n,
        p=p,
        q=q,
        algorithm=algorithm,
        tree_name=str(tree_name),
        grid=grid,
        distribution=distribution,
        program=program,
    )


def _ge2bnd_result(
    setup: _Ge2bndSetup,
    machine: Machine,
    schedule: Schedule,
    *,
    policy: Union[str, SchedulingPolicy],
    network: Union[str, NetworkModel],
) -> SimulationResult:
    """Convert one finished GE2BND schedule into a :class:`SimulationResult`."""
    flops = ge2bnd_reported_flops(setup.m, setup.n)
    time = schedule.makespan
    return SimulationResult(
        m=setup.m,
        n=setup.n,
        p=setup.p,
        q=setup.q,
        algorithm=setup.algorithm,
        tree=setup.tree_name,
        machine_nodes=machine.n_nodes,
        time_seconds=time,
        gflops=flops / time / 1e9 if time > 0 else 0.0,
        n_tasks=len(setup.program),
        messages=schedule.messages,
        comm_bytes=schedule.comm_bytes,
        ge2bnd_seconds=time,
        policy=_policy_name(policy),
        network=_network_name(network),
        comm_seconds=schedule.comm_seconds,
        schedule=schedule,
    )


def _ge2val_result(
    base: SimulationResult, machine: Machine, algorithm: str
) -> SimulationResult:
    """Stack the single-node BND2BD + BD2VAL stages onto a GE2BND result."""
    post = post_processing_seconds(base.n, machine)
    total = base.time_seconds + post
    flops = ge2val_reported_flops(base.m, base.n)
    return SimulationResult(
        m=base.m,
        n=base.n,
        p=base.p,
        q=base.q,
        algorithm=f"ge2val-{algorithm}",
        tree=base.tree,
        machine_nodes=machine.n_nodes,
        time_seconds=total,
        gflops=flops / total / 1e9 if total > 0 else 0.0,
        n_tasks=base.n_tasks,
        messages=base.messages,
        comm_bytes=base.comm_bytes,
        ge2bnd_seconds=base.ge2bnd_seconds,
        post_seconds=post,
        policy=base.policy,
        network=base.network,
        comm_seconds=base.comm_seconds,
        schedule=base.schedule,
        scenario=base.scenario,
        # The post stages are deterministic and single-node, so the whole
        # GE2BND distribution translates by the post time.
        distribution=(
            base.distribution.shifted(post)
            if base.distribution is not None
            else None
        ),
    )


def simulate_ge2bnd(
    m: int,
    n: int,
    machine: Machine,
    *,
    tree: Union[str, ReductionTree] = "auto",
    algorithm: str = "bidiag",
    grid: Optional[ProcessGrid] = None,
    policy: Union[str, SchedulingPolicy] = "list",
    network: Union[str, NetworkModel] = "uniform",
    scenario: Union[str, Scenario, None] = None,
    draws: Optional[int] = None,
    seed: int = 0,
) -> SimulationResult:
    """Simulate the GE2BND stage for an ``m x n`` matrix.

    Parameters
    ----------
    m, n:
        Element-wise matrix dimensions (``m >= n``).
    machine:
        Machine model (node count, cores, tile size, network).
    tree:
        Tree name (``flatts``, ``flattt``, ``greedy``, ``auto``) or an
        explicit :class:`~repro.trees.base.ReductionTree`.
    algorithm:
        ``"bidiag"`` or ``"rbidiag"``.
    grid:
        Process grid for the block-cyclic distribution; ``None`` uses the
        paper's default for the tile shape (near-square / ``nodes x 1``).
    policy:
        Scheduling policy replaying the compiled program (name or
        :class:`~repro.runtime.policies.SchedulingPolicy`; default the
        legacy ``"list"`` scheduler).
    network:
        Communication model pricing inter-node transfers (name or
        :class:`~repro.runtime.network.NetworkModel`; default the legacy
        ``"uniform"`` flat-cost model, ``"alpha-beta"`` for the
        message-level model of :mod:`repro.runtime.network`).
    scenario:
        Machine-realism scenario (name or
        :class:`~repro.runtime.scenario.Scenario`; ``None`` for the ideal
        deterministic machine).  Stochastic scenarios attach a
        :class:`~repro.runtime.scenario.MakespanDistribution` over
        ``draws`` Monte-Carlo draws seeded by ``seed``; ``time_seconds``
        stays the nominal (heterogeneity-only) replay.
    draws, seed:
        Monte-Carlo draw count (``None`` = the scenario's default) and
        rng seed; ignored without a stochastic scenario.
    """
    setup = _ge2bnd_setup(
        m, n, machine, tree=tree, algorithm=algorithm, grid=grid
    )
    scen = get_scenario(scenario)
    if scen is None or scen.is_trivial:
        # The no-scenario path (and the explicit "none" scenario) is the
        # plain engine run — bit-identical to what it always produced.
        schedule = simulate_graph(
            setup.program, machine, setup.distribution, policy=policy,
            network=network,
        )
        result = _ge2bnd_result(
            setup, machine, schedule, policy=policy, network=network
        )
        return replace(result, scenario=scen.name) if scen is not None else result
    run = run_scenario(
        setup.program,
        machine,
        scen,
        setup.distribution,
        policy=policy,
        network=network,
        draws=draws,
        seed=seed,
    )
    result = _ge2bnd_result(
        setup, machine, run.schedule, policy=policy, network=network
    )
    return replace(result, scenario=scen.name, distribution=run.distribution)


def post_processing_seconds(n: int, machine: Machine) -> float:
    """Time of the single-node BND2BD + BD2VAL stages.

    BND2BD is memory bound: the paper keeps it multi-threaded but on one
    node; we charge its flops at the node's memory-bound rate (2 flops per
    8 bytes of streamed band data).  BD2VAL is a negligible ``O(n^2)``
    scalar stage charged at a single core's scalar rate.
    """
    nb = machine.tile_size
    membw = machine.preset.memory_bandwidth_gbs * 1e9
    membound_rate = membw / 4.0  # flops/s sustainable by streaming 8B per 2 flops
    bnd2bd_time = bnd2bd_flops(n, nb) / membound_rate
    scalar_rate = 0.05 * machine.preset.core_gemm_gflops * 1e9
    bd2val_time = bd2val_flops(n) / scalar_rate
    return bnd2bd_time + bd2val_time


def simulate_ge2val(
    m: int,
    n: int,
    machine: Machine,
    *,
    tree: Union[str, ReductionTree] = "auto",
    algorithm: str = "auto",
    grid: Optional[ProcessGrid] = None,
    policy: Union[str, SchedulingPolicy] = "list",
    network: Union[str, NetworkModel] = "uniform",
    scenario: Union[str, Scenario, None] = None,
    draws: Optional[int] = None,
    seed: int = 0,
) -> SimulationResult:
    """Simulate the full GE2VAL pipeline (GE2BND + BND2BD + BD2VAL).

    ``algorithm="auto"`` follows the paper's best configuration: BIDIAG for
    square-ish matrices, R-BIDIAG when ``m >= 5n/3``.  The BND2BD and BD2VAL
    stages are charged on a single node (they are not distributed in the
    paper either), which is what caps the distributed GE2VAL scaling.
    Scenario handling matches :func:`simulate_ge2bnd`; the deterministic
    post stages shift the Monte-Carlo distribution without widening it.
    """
    if algorithm == "auto":
        from repro.api.resolver import resolve_variant

        algorithm = resolve_variant(algorithm, m, n)
    base = simulate_ge2bnd(
        m, n, machine, tree=tree, algorithm=algorithm, grid=grid,
        policy=policy, network=network, scenario=scenario, draws=draws,
        seed=seed,
    )
    return _ge2val_result(base, machine, algorithm)
