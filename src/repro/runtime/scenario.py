"""Scenario simulation: heterogeneity, faults, and Monte-Carlo makespans.

The deterministic engine answers "how fast is this plan on an ideal
machine?".  A :class:`Scenario` asks the operational question instead:
*how fast is it on a machine whose cores differ, fail, and straggle, over
a noisy network?*  It bundles

* **speed heterogeneity** — per-node and per-core slowdown patterns
  applied to :class:`~repro.runtime.machine.Machine` (block-cyclically
  cycled over the actual node/core counts, so one named scenario works on
  any machine size);
* a **fault model** (:mod:`repro.runtime.faults`) drawing per-op duration
  factors: fail-stop re-execution, straggler slowdowns;
* a **noise model** drawing per-message wire-time factors layered on any
  network model (uniform or alpha-beta).

Stochastic scenarios run in **Monte-Carlo mode**: all perturbation
factors are sampled vectorized up front — one ``(n_draws, n_ops)`` matrix
per model from a single seeded generator — and the engine's event loop is
replayed once per draw over the perturbed structure-of-arrays duration
vectors, producing a :class:`MakespanDistribution` (mean / p50 / p95 /
CI) next to the nominal schedule.  The replay loops below replicate the
engine's greedy disciplines *exactly* (stable ``(policy key, op id)``
pops, greedy node round-robin, dispatch-order NIC serialization,
pop-order ``busy`` accumulation), so a scenario whose every factor is
``1.0`` reproduces :meth:`~repro.runtime.engine.SimulationEngine.run`
bit for bit — the property the zero-perturbation tests pin.

Two modeling decisions worth knowing:

* **priorities are nominal.**  Policy rank keys are computed from the
  unperturbed duration vector: the scheduler ranks ops by its *model* of
  the machine and cannot foresee faults, exactly like a real list
  scheduler.  This also keeps the engine's rank memo tables valid, so the
  per-draw marginal cost is one event loop and nothing else.
* **all factors are >= 1.**  Slowdowns, fault factors and noise factors
  only ever delay; the nominal analytic lower bound therefore bounds
  every draw, which keeps batch pruning sound for ``robust-makespan``.

Observability: every Monte-Carlo run reports ``engine.mc.draws`` /
``engine.mc.runs`` counters and an ``engine.mc.fault_events`` per-draw
histogram into :data:`repro.obs.metrics.REGISTRY`.  Under
``REPRO_VERIFY=1`` the nominal schedule — and the first draw of a
noise-free stochastic scenario — is re-checked by the static verifier
with the realized durations.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ir.program import Program
from repro.obs.metrics import REGISTRY
from repro.runtime.faults import (
    FailStopFaults,
    FaultModel,
    LinkJitterNoise,
    NoFaults,
    NoiseModel,
    NoNoise,
    StragglerFaults,
    get_fault_model,
    get_noise_model,
)
from repro.runtime.machine import Machine
from repro.runtime.scheduler import Schedule

__all__ = [
    "SCENARIOS",
    "MakespanDistribution",
    "Scenario",
    "ScenarioReplayer",
    "ScenarioRun",
    "available_scenarios",
    "get_scenario",
    "run_scenario",
]


# --------------------------------------------------------------------------- #
# Makespan distributions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MakespanDistribution:
    """Summary of the makespans of one Monte-Carlo scenario run.

    Quantiles use numpy's default linear interpolation; ``ci95_low`` /
    ``ci95_high`` is the normal-approximation 95% confidence interval on
    the *mean* (±1.96 standard errors).  The raw per-draw makespans ride
    along (``makespans``, draw order = sampling order) so callers can
    compute any other statistic without re-simulating; two distributions
    are equal iff every draw agrees bitwise, which is what the seeded
    determinism tests compare.
    """

    n_draws: int
    seed: int
    mean: float
    std: float
    p5: float
    p50: float
    p95: float
    ci95_low: float
    ci95_high: float
    min: float
    max: float
    makespans: Tuple[float, ...] = field(repr=False)

    @classmethod
    def from_makespans(
        cls, makespans: Sequence[float], seed: int
    ) -> "MakespanDistribution":
        arr = np.asarray(makespans, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("from_makespans needs a non-empty 1-D sequence")
        n = int(arr.size)
        mean = float(arr.mean())
        std = float(arr.std(ddof=1)) if n > 1 else 0.0
        half = 1.96 * std / math.sqrt(n)
        p5, p50, p95 = (float(x) for x in np.quantile(arr, (0.05, 0.5, 0.95)))
        return cls(
            n_draws=n,
            seed=int(seed),
            mean=mean,
            std=std,
            p5=p5,
            p50=p50,
            p95=p95,
            ci95_low=mean - half,
            ci95_high=mean + half,
            min=float(arr.min()),
            max=float(arr.max()),
            makespans=tuple(arr.tolist()),
        )

    def quantile(self, q: float) -> float:
        """Empirical quantile of the draw makespans (linear interpolation)."""
        return float(np.quantile(np.asarray(self.makespans), q))

    def shifted(self, delta: float) -> "MakespanDistribution":
        """This distribution translated by a deterministic ``delta`` seconds.

        Used to stack the (deterministic, single-node) GE2VAL
        post-processing stages onto a GE2BND distribution: every location
        statistic shifts, the spread statistics do not.
        """
        return replace(
            self,
            mean=self.mean + delta,
            p5=self.p5 + delta,
            p50=self.p50 + delta,
            p95=self.p95 + delta,
            ci95_low=self.ci95_low + delta,
            ci95_high=self.ci95_high + delta,
            min=self.min + delta,
            max=self.max + delta,
            makespans=tuple(m + delta for m in self.makespans),
        )

    def to_row(self) -> Dict[str, float]:
        """Scalar summary for result tables (raw draws excluded)."""
        return {
            "mc_draws": self.n_draws,
            "mc_mean": self.mean,
            "mc_std": self.std,
            "mc_p50": self.p50,
            "mc_p95": self.p95,
        }


# --------------------------------------------------------------------------- #
# Scenarios
# --------------------------------------------------------------------------- #
def _cycle(pattern: Tuple[float, ...], count: int) -> Optional[Tuple[float, ...]]:
    """Expand a slowdown pattern block-cyclically to ``count`` entries.

    Returns ``None`` when the expansion is a no-op (empty or all-ones
    pattern), so homogeneous machines keep ``slowdowns=None`` and stay on
    the engine fast path.
    """
    if not pattern or all(f == 1.0 for f in pattern):
        return None
    return tuple(pattern[i % len(pattern)] for i in range(count))


@dataclass(frozen=True)
class Scenario:
    """One named machine-realism configuration.

    Parameters
    ----------
    name:
        Registry / display name (also what result rows report).
    description:
        One-line summary for ``repro scenarios``.
    node_slowdowns, core_slowdowns:
        Relative speed patterns (``1.0`` = nominal, ``1.25`` = 25%
        slower), cycled block-cyclically over the machine's actual node /
        core count by :meth:`apply_to_machine` — node ``i`` gets
        ``node_slowdowns[i % len]``.  Every factor must be ``>= 1.0``.
    faults, noise:
        Fault / noise model instances or registry names (see
        :mod:`repro.runtime.faults`).
    draws:
        Default Monte-Carlo draw count when the caller does not pass one.
    """

    name: str
    description: str = ""
    node_slowdowns: Tuple[float, ...] = ()
    core_slowdowns: Tuple[float, ...] = ()
    faults: Union[str, FaultModel] = NoFaults()
    noise: Union[str, NoiseModel] = NoNoise()
    draws: int = 64

    def __post_init__(self) -> None:
        for attr in ("node_slowdowns", "core_slowdowns"):
            factors = tuple(float(f) for f in getattr(self, attr))
            for f in factors:
                if not np.isfinite(f) or f < 1.0:
                    raise ValueError(
                        f"{attr} entries must be finite and >= 1.0 "
                        f"(slowdowns only ever slow a core down), got {f}"
                    )
            object.__setattr__(self, attr, factors)
        object.__setattr__(self, "faults", get_fault_model(self.faults))
        object.__setattr__(self, "noise", get_noise_model(self.noise))
        if self.draws < 1:
            raise ValueError(f"draws must be >= 1, got {self.draws}")

    # ------------------------------------------------------------------ #
    @property
    def heterogeneous(self) -> bool:
        """Whether any node/core runs slower than nominal."""
        return any(f != 1.0 for f in self.node_slowdowns + self.core_slowdowns)

    @property
    def stochastic(self) -> bool:
        """Whether Monte-Carlo draws can differ from the nominal run."""
        return not (self.faults.deterministic and self.noise.deterministic)

    @property
    def is_trivial(self) -> bool:
        """Whether this scenario is exactly the ideal deterministic world."""
        return not self.heterogeneous and not self.stochastic

    def fingerprint(self) -> Tuple:
        """Hashable identity (tuning cache keys, dedup)."""
        return (
            self.name,
            self.node_slowdowns,
            self.core_slowdowns,
            self.faults.spec(),
            self.noise.spec(),
        )

    def apply_to_machine(self, machine: Machine) -> Machine:
        """``machine`` with this scenario's slowdown patterns expanded.

        Homogeneous scenarios return ``machine`` unchanged (same object),
        so the zero-perturbation path keeps its memo-table keys.
        """
        if not self.heterogeneous:
            return machine
        return replace(
            machine,
            node_slowdowns=_cycle(self.node_slowdowns, machine.n_nodes),
            core_slowdowns=_cycle(self.core_slowdowns, machine.cores_per_node),
        )


#: Name -> scenario.  Extend via plain dict assignment (tests do).
SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="none",
            description="ideal machine: homogeneous, fault-free, noiseless",
        ),
        Scenario(
            name="hetero",
            description="every other node runs 25% slower",
            node_slowdowns=(1.0, 1.25),
        ),
        Scenario(
            name="slow-core",
            description="one core in four runs 50% slower",
            core_slowdowns=(1.5, 1.0, 1.0, 1.0),
        ),
        Scenario(
            name="fail-stop",
            description="2% fail-stop op failures with full re-execution",
            faults=FailStopFaults(prob=0.02, rework=1.0),
            draws=128,
        ),
        Scenario(
            name="straggler",
            description="5% straggler ops at 1 + Exp(0.5) x nominal",
            faults=StragglerFaults(prob=0.05, scale=0.5),
            draws=128,
        ),
        Scenario(
            name="noisy-net",
            description="link jitter: wire times stretch by exp(0.25 |N|)",
            noise=LinkJitterNoise(sigma=0.25),
            draws=128,
        ),
        Scenario(
            name="hostile",
            description="slow nodes + slow cores + fail-stop faults + jitter",
            node_slowdowns=(1.0, 1.25),
            core_slowdowns=(1.5, 1.0, 1.0, 1.0),
            faults=FailStopFaults(prob=0.02, rework=1.0),
            noise=LinkJitterNoise(sigma=0.25),
            draws=128,
        ),
    )
}


def get_scenario(scenario: Union[str, Scenario, None]) -> Optional[Scenario]:
    """Coerce a name / instance / None to a :class:`Scenario` (or None)."""
    if scenario is None or isinstance(scenario, Scenario):
        return scenario
    try:
        return SCENARIOS[str(scenario).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; available: {sorted(SCENARIOS)}"
        ) from None


def available_scenarios() -> List[Tuple[str, str]]:
    """``(name, description)`` pairs, sorted by name (for the CLI listing)."""
    return [(name, SCENARIOS[name].description) for name in sorted(SCENARIOS)]


# --------------------------------------------------------------------------- #
# The perturbed replay loop
# --------------------------------------------------------------------------- #
class ScenarioReplayer:
    """Replay one (program, engine configuration) under perturbations.

    Construction hoists everything draw-invariant — nominal durations,
    owner vector, *nominal* policy rank keys (through the engine's module
    memo tables, shared with plain runs), CSR successor lists, message
    pricing — so each :meth:`replay` call costs one event loop.

    The loops replicate :meth:`SimulationEngine._run_fast` exactly; with
    unit factors they produce bit-identical schedules (multiplying a
    finite positive duration by ``1.0`` is an exact float identity, and
    the pop/tie disciplines are the same code shape).
    """

    def __init__(
        self,
        engine,
        program: Program,
        *,
        node_of_op: Optional[Sequence[int]] = None,
    ) -> None:
        machine = engine.machine
        self.engine = engine
        self.program = program
        self.machine = machine
        self.network = engine.network
        self.n = n = len(program)
        self.n_nodes = machine.n_nodes
        self.cores = machine.cores_per_node

        durations_np = engine.duration_vector(program)
        if node_of_op is None:
            node_np = engine.owner_vector(program)
            cacheable = True
        else:
            node_np = np.ascontiguousarray(node_of_op, dtype=np.int64)
            if self.n_nodes == 1:
                node_np = None
            cacheable = False
        # Rank keys from the *nominal* durations: the policy ranks ops by
        # its model of the machine — it cannot foresee faults — which is
        # also what lets every draw share one memoized order.
        keys = engine.rank_keys(program, durations_np, node_np, cacheable=cacheable)
        self.entry_of = list(zip(keys, range(n)))
        self.node_np = node_np
        self.node_of = node_np.tolist() if node_np is not None else None

        # Fold node slowdowns into the base duration vector (owner nodes
        # are fixed per op); core slowdowns apply at pop time, when the
        # core is chosen.
        node_factors = machine.node_factors()
        if node_factors is not None:
            nf = np.asarray(node_factors, dtype=np.float64)
            if node_np is not None:
                durations_np = durations_np * nf[node_np]
            else:
                durations_np = durations_np * nf[0]
        self.base_durations_np = durations_np
        core_factors = machine.core_factors()
        self.core_factors: Optional[List[float]] = (
            list(core_factors) if core_factors is not None else None
        )

        self.succ_indptr, self.succ_ids = program.succ_csr_lists()
        self.indegree_base: List[int] = np.diff(program.pred_indptr_np).tolist()
        self.init_ready = [
            op_id for op_id, deg in enumerate(self.indegree_base) if deg == 0
        ]
        self.msg_bytes: Optional[List[int]] = None
        if self.n_nodes > 1 and self.network.event_driven:
            from repro.runtime.network import resolved_message_bytes_vector

            self.msg_bytes = resolved_message_bytes_vector(
                self.network, program, machine
            ).tolist()

    # ------------------------------------------------------------------ #
    def realized_durations_np(
        self, fault_row: Optional[np.ndarray]
    ) -> np.ndarray:
        """Per-op durations of one draw, before core factors."""
        if fault_row is None:
            return self.base_durations_np
        return self.base_durations_np * fault_row

    def effective_durations(
        self,
        fault_row: Optional[np.ndarray],
        core_of_task: Sequence[int],
    ) -> List[float]:
        """The exact durations a draw's schedule realized, per op.

        Reproduces the replay's multiplication chain (base × fault ×
        core factor) in the same order, so the static verifier's bitwise
        ``finish == start + duration`` check holds on perturbed draws.
        """
        realized = self.realized_durations_np(fault_row)
        cf = self.core_factors
        if cf is not None:
            realized = realized * np.asarray(cf, dtype=np.float64)[
                np.asarray(core_of_task, dtype=np.int64)
            ]
        return realized.tolist()

    # ------------------------------------------------------------------ #
    def replay(
        self,
        fault_row: Optional[np.ndarray] = None,
        noise_row: Optional[np.ndarray] = None,
    ) -> Schedule:
        """One event-loop pass under the given perturbation factors.

        ``fault_row`` multiplies op durations, ``noise_row`` multiplies
        per-message wire times (both per-op vectors, or ``None`` for
        nominal).  Replays record no traces — use a plain engine run for
        Gantt/trace exports.
        """
        if self.n == 0:
            n_nodes = self.n_nodes
            return Schedule(
                0.0, [], [], [], [0.0] * n_nodes, 0, 0,
                core_of_task=[],
                comm_time_per_node=[0.0] * n_nodes,
                messages_per_node=[0] * n_nodes,
            )
        durations = self.realized_durations_np(fault_row).tolist()
        noise = noise_row.tolist() if noise_row is not None else None
        if self.node_of is None:
            return self._replay_single(durations)
        return self._replay_multi(durations, noise)

    def _replay_single(self, durations: List[float]) -> Schedule:
        n = self.n
        entry_of = self.entry_of
        succ_indptr, succ_ids = self.succ_indptr, self.succ_ids
        indegree = self.indegree_base.copy()
        ready_time = [0.0] * n
        start = [0.0] * n
        finish = [0.0] * n
        core_of_op = [0] * n
        heappush = heapq.heappush
        heappop = heapq.heappop
        cf = self.core_factors
        core_heap = [(0.0, c) for c in range(self.cores)]  # already a heap
        ready = []
        for op_id in self.init_ready:
            heappush(ready, entry_of[op_id])
        busy = 0.0
        scheduled = 0
        while ready:
            _, op_id = heappop(ready)
            core_free, core_idx = heappop(core_heap)
            rt = ready_time[op_id]
            t_start = core_free if core_free > rt else rt
            d = durations[op_id]
            if cf is not None:
                d = d * cf[core_idx]
            t_finish = t_start + d
            start[op_id] = t_start
            finish[op_id] = t_finish
            core_of_op[op_id] = core_idx
            busy += d
            heappush(core_heap, (t_finish, core_idx))
            scheduled += 1
            for k in range(succ_indptr[op_id], succ_indptr[op_id + 1]):
                succ = succ_ids[k]
                if t_finish > ready_time[succ]:
                    ready_time[succ] = t_finish
                deg = indegree[succ] - 1
                indegree[succ] = deg
                if deg == 0:
                    heappush(ready, entry_of[succ])
        if scheduled < n:  # pragma: no cover - defensive (cycle)
            raise RuntimeError("engine stalled: the program has a cycle")
        return Schedule(
            makespan=max(finish),
            start=start,
            finish=finish,
            node_of_task=[0] * n,
            busy_time_per_node=[busy],
            messages=0,
            comm_bytes=0,
            core_of_task=core_of_op,
            comm_time_per_node=[0.0],
            messages_per_node=[0],
        )

    def _replay_multi(
        self, durations: List[float], noise: Optional[List[float]]
    ) -> Schedule:
        n = self.n
        machine = self.machine
        network = self.network
        n_nodes = self.n_nodes
        entry_of = self.entry_of
        node_of = self.node_of
        succ_indptr, succ_ids = self.succ_indptr, self.succ_ids
        indegree = self.indegree_base.copy()
        ready_time = [0.0] * n
        start = [0.0] * n
        finish = [0.0] * n
        core_of_op = [0] * n
        heappush = heapq.heappush
        heappop = heapq.heappop
        cf = self.core_factors

        busy = [0.0] * n_nodes
        messages = 0
        comm_bytes = 0
        sent = [0] * n_nodes
        comm_time = [0.0] * n_nodes
        event_driven = network.event_driven
        transfer = machine.transfer_time()
        handshake = network.handshake_seconds(machine)
        msg_bytes = self.msg_bytes
        msg_cost_cache: Dict[int, Tuple[float, float]] = {}
        seen_transfers: set = set()
        transfer_arrival: Dict[Tuple[int, int], float] = {}
        nic_free = [0.0] * n_nodes

        core_heaps: List[List[Tuple[float, int]]] = [
            [(0.0, c) for c in range(self.cores)] for _ in range(n_nodes)
        ]
        ready_heaps: List[List[Tuple[object, int]]] = [[] for _ in range(n_nodes)]
        for op_id in self.init_ready:
            heappush(ready_heaps[node_of[op_id]], entry_of[op_id])

        scheduled = 0
        while scheduled < n:
            progressed = False
            for node in range(n_nodes):
                heap = ready_heaps[node]
                core_heap = core_heaps[node]
                while heap:
                    _, op_id = heappop(heap)
                    core_free, core_idx = heappop(core_heap)
                    rt = ready_time[op_id]
                    t_start = core_free if core_free > rt else rt
                    d = durations[op_id]
                    if cf is not None:
                        d = d * cf[core_idx]
                    t_finish = t_start + d
                    start[op_id] = t_start
                    finish[op_id] = t_finish
                    core_of_op[op_id] = core_idx
                    busy[node] += d
                    heappush(core_heap, (t_finish, core_idx))
                    scheduled += 1
                    progressed = True
                    for k in range(succ_indptr[op_id], succ_indptr[op_id + 1]):
                        succ = succ_ids[k]
                        dst = node_of[succ]
                        arrival = t_finish
                        if dst != node:
                            tkey = (op_id, dst)
                            if event_driven:
                                cached = transfer_arrival.get(tkey)
                                if cached is None:
                                    n_bytes = msg_bytes[op_id]
                                    cost = msg_cost_cache.get(n_bytes)
                                    if cost is None:
                                        cost = (
                                            machine.injection_seconds(n_bytes),
                                            network.message_seconds(
                                                n_bytes, machine
                                            ),
                                        )
                                        msg_cost_cache[n_bytes] = cost
                                    injection, wire = cost
                                    if noise is not None:
                                        # Noise stretches the wire, not the
                                        # sender's NIC occupancy.
                                        wire = wire * noise[op_id]
                                    inject_start = t_finish + handshake
                                    if nic_free[node] > inject_start:
                                        inject_start = nic_free[node]
                                    nic_free[node] = inject_start + injection
                                    cached = inject_start + wire
                                    transfer_arrival[tkey] = cached
                                    messages += 1
                                    comm_bytes += n_bytes
                                    sent[node] += 1
                                    comm_time[node] += injection
                                arrival = cached
                            else:
                                hop = transfer
                                if noise is not None:
                                    hop = hop * noise[op_id]
                                arrival += hop
                                if tkey not in seen_transfers:
                                    seen_transfers.add(tkey)
                                    messages += 1
                                    comm_bytes += machine.tile_bytes
                                    sent[node] += 1
                                    comm_time[node] += hop
                        if arrival > ready_time[succ]:
                            ready_time[succ] = arrival
                        deg = indegree[succ] - 1
                        indegree[succ] = deg
                        if deg == 0:
                            heappush(ready_heaps[dst], entry_of[succ])
            if not progressed:  # pragma: no cover - defensive (cycle)
                raise RuntimeError("engine stalled: the program has a cycle")

        return Schedule(
            makespan=max(finish),
            start=start,
            finish=finish,
            node_of_task=list(node_of),
            busy_time_per_node=busy,
            messages=messages,
            comm_bytes=comm_bytes,
            core_of_task=core_of_op,
            comm_time_per_node=comm_time,
            messages_per_node=sent,
        )


# --------------------------------------------------------------------------- #
# Monte-Carlo driver
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioRun:
    """Outcome of one scenario simulation.

    ``schedule`` is the *nominal* replay (heterogeneity applied, no
    stochastic perturbations) — the headline makespan; ``distribution``
    summarizes the Monte-Carlo draws, or is ``None`` for deterministic
    scenarios.
    """

    schedule: Schedule
    distribution: Optional[MakespanDistribution] = None


def run_scenario(
    program: Program,
    machine: Machine,
    scenario: Scenario,
    distribution=None,
    *,
    policy="list",
    network="uniform",
    draws: Optional[int] = None,
    seed: int = 0,
    node_of_op: Optional[Sequence[int]] = None,
) -> ScenarioRun:
    """Simulate ``program`` under ``scenario`` on (a perturbed) ``machine``.

    ``machine`` is the nominal machine; the scenario's slowdown patterns
    are applied here.  Deterministic scenarios return only the nominal
    schedule; stochastic ones add a :class:`MakespanDistribution` over
    ``draws`` Monte-Carlo draws (default: the scenario's own ``draws``)
    seeded by ``seed`` — fault factors are sampled before noise factors,
    always, so a seed identifies its draws regardless of engine path or
    hash seed.
    """
    from repro.runtime.engine import SimulationEngine

    eff_machine = scenario.apply_to_machine(machine)
    engine = SimulationEngine(
        eff_machine, distribution, policy=policy, network=network
    )
    replayer = ScenarioReplayer(engine, program, node_of_op=node_of_op)
    nominal = replayer.replay()
    _maybe_verify(replayer, nominal, fault_row=None)
    if not scenario.stochastic:
        return ScenarioRun(schedule=nominal)

    n_draws = int(draws) if draws is not None else scenario.draws
    if n_draws < 1:
        raise ValueError(f"draws must be >= 1, got {n_draws}")
    n = len(program)
    rng = np.random.default_rng(seed)
    # Fixed sampling order: faults first, then noise (each model consumes
    # a configuration-determined amount of the stream).
    fault_factors, fault_events = scenario.faults.sample(rng, n_draws, n)
    noise_factors = scenario.noise.sample(rng, n_draws, n)
    fault_trivial = scenario.faults.deterministic
    noise_trivial = scenario.noise.deterministic

    makespans: List[float] = []
    verified = False
    for i in range(n_draws):
        fault_row = None if fault_trivial else fault_factors[i]
        noise_row = None if noise_trivial else noise_factors[i]
        sched = replayer.replay(fault_row, noise_row)
        if not verified and noise_trivial:
            # One perturbed draw through the static verifier (the noise
            # models reprice wires in ways the verifier's exact network
            # arithmetic cannot re-derive, so noisy draws are skipped).
            _maybe_verify(replayer, sched, fault_row=fault_row)
            verified = True
        makespans.append(sched.makespan)
    REGISTRY.inc("engine.mc.runs")
    REGISTRY.inc("engine.mc.draws", n_draws)
    for events in fault_events.tolist():
        REGISTRY.observe("engine.mc.fault_events", events)
    return ScenarioRun(
        schedule=nominal,
        distribution=MakespanDistribution.from_makespans(makespans, seed),
    )


def _maybe_verify(
    replayer: ScenarioReplayer,
    schedule: Schedule,
    *,
    fault_row: Optional[np.ndarray],
) -> None:
    """Re-check one replay under ``REPRO_VERIFY=1`` with realized durations."""
    from repro.verify.hooks import verify_enabled

    if not verify_enabled():
        return
    from repro.verify.hooks import check_schedule

    engine = replayer.engine
    check_schedule(
        schedule,
        replayer.program,
        engine.machine,
        distribution=engine.distribution,
        network=engine.network,
        durations=replayer.effective_durations(fault_row, schedule.core_of_task),
    )
