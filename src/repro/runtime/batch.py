"""Batched candidate simulation: one engine pass over many plan variants.

Tuning sweeps evaluate many (machine, grid, policy, network) candidates of
the *same* compiled :class:`~repro.ir.program.Program`.  Running them one
:meth:`~repro.runtime.engine.SimulationEngine.run` at a time re-enters the
per-run Python setup for every candidate even though almost everything is
shared; this module factors the candidate product instead:

* **shared axes are computed once per unique key** — the CSR successor
  lists and base indegrees once per program; the duration vector (and the
  Python list the event loop indexes) once per unique machine; the owner
  vector once per unique grid; the message-byte vector once per unique
  (network, machine); all through the PR-5 memo tables of
  :mod:`repro.runtime.engine`, so the work is shared with plain engine
  runs too;
* **policy rankings become dense ranks** — each policy's total order
  ``(key, op id)`` is collapsed into one stable argsort per unique
  (policy, machine, grid), memoized module-wide
  (:data:`~repro.runtime.engine._BATCH_RANK_ORDERS`); the event loops
  then heap small ints instead of ``(key, id)`` tuples, which is both
  faster and shareable across every candidate with the same order
  (machine-invariant policies such as ``critical-path`` / ``fifo`` /
  ``random`` fold the machine out of the key entirely);
* **identical-order candidates are deduplicated** — two candidates whose
  (machine, grid, network, dispatch order) agree produce the same
  schedule by construction, so the second reuses the first's
  :class:`~repro.runtime.scheduler.Schedule` (e.g. ``list`` and
  ``locality`` coincide on one node, where every producer is local);
* **analytic bounds prune before any event loop** — stacked per-machine
  duration rows go through one ``np.maximum.reduceat`` level sweep
  (:meth:`~repro.ir.program.Program.critical_path_many`) plus a per-node
  area bound, and :func:`simulate_resolved_batch` evaluates candidates in
  ascending-bound order against the running incumbent, so provably worse
  candidates never touch the engine.

Every produced schedule is **bit-identical** to the corresponding
individual ``SimulationEngine(machine, ...).run(program)``: the loops
below replicate the engine's greedy disciplines exactly (stable
``(policy key, op id)`` pop order via dense ranks, greedy node
round-robin, dispatch-order NIC serialization, pop-order ``busy``
accumulation), and the equivalence matrix in
``tests/test_batch_engine.py`` plus the audit in
``benchmarks/bench_batch.py`` hold the guarantee across all policies x
networks x grids.

Pruning is conservative: a candidate is skipped only when its makespan
lower bound is *strictly* worse than a makespan already measured, so the
winning candidate (lowest cost, earliest index) matches an exhaustive
evaluation.

Batch-level observability goes through the PR-7 registry
(``engine.memo.batch.*`` counters, surfaced by
:func:`repro.runtime.engine.engine_memo_stats`) and the ambient tracer
(``batch.prepare`` / ``batch.simulate`` phase spans) — no new telemetry.
Batched replays carry no per-task traces; use a plain engine run for
Gantt or trace exports.
"""

from __future__ import annotations

import heapq
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.dag.task import TaskGraph
from repro.ir.program import Program
from repro.models.flops import ge2bnd_reported_flops, ge2val_reported_flops
from repro.obs.metrics import REGISTRY
from repro.obs.tracer import current_tracer
from repro.runtime.engine import (
    _BATCH_BOUNDS,
    _BATCH_RANK_ORDERS,
    SimulationEngine,
    _memo_get,
    _memo_put,
)
from repro.runtime.machine import Machine
from repro.runtime.network import (
    AlphaBetaNetwork,
    NetworkModel,
    UniformNetwork,
    resolved_message_bytes_vector,
)
from repro.runtime.policies import SchedulingPolicy, get_policy
from repro.runtime.scenario import run_scenario
from repro.runtime.scheduler import Schedule
from repro.runtime.simulator import (
    SimulationResult,
    _ge2bnd_result,
    _ge2bnd_setup,
    _ge2val_result,
    post_processing_seconds,
)
from repro.tiles.distribution import BlockCyclicDistribution

__all__ = [
    "BatchCandidate",
    "BatchEngine",
    "PlanOutcome",
    "simulate_batch",
    "simulate_resolved_batch",
]

#: A dense-rank policy ordering: ``rank_of[op]`` is the op's position in
#: the stable ``(key, op id)`` sort and ``id_of[position]`` inverts it.
_DenseOrder = Tuple[List[int], List[int]]


@dataclass(frozen=True)
class BatchCandidate:
    """One (machine, grid, policy, network) variant of a batched replay."""

    machine: Machine
    distribution: Optional[BlockCyclicDistribution] = None
    policy: Union[str, SchedulingPolicy] = "list"
    network: Union[str, NetworkModel] = "uniform"


def _dense_order(keys: Sequence[object], n: int) -> _DenseOrder:
    """Collapse policy keys into the stable ``(key, op id)`` permutation.

    Heap-popping ``rank_of[op]`` ints reproduces the engine's
    ``(keys[op], op)`` tuple pops exactly: a stable ascending sort breaks
    key ties by ascending op id, which is the engine's tie rule, and heap
    order over distinct ints is total.
    """
    if n == 0:
        return [], []
    id_of_np: Optional[np.ndarray] = None
    try:
        arr = np.asarray(keys, dtype=np.float64)
        if arr.shape == (n,):
            id_of_np = np.argsort(arr, kind="stable")
        elif arr.ndim == 2 and arr.shape[0] == n:
            # Tuple keys (e.g. locality's (remote, -level)): lexsort with
            # the first component primary.  np.lexsort is stable, so full
            # ties keep ascending op id.
            id_of_np = np.lexsort(arr.T[::-1])
    except (TypeError, ValueError):
        id_of_np = None
    if id_of_np is None:
        # Exotic key types: Python's stable sort is the reference order.
        id_of = sorted(range(n), key=keys.__getitem__)
        rank_of = [0] * n
        for rank, op_id in enumerate(id_of):
            rank_of[op_id] = rank
        return rank_of, id_of
    rank_np = np.empty(n, dtype=np.int64)
    rank_np[id_of_np] = np.arange(n, dtype=np.int64)
    return rank_np.tolist(), id_of_np.tolist()


def _network_token(network: NetworkModel) -> object:
    """Hashable identity of a network model for schedule deduplication.

    Unknown subclasses get a fresh sentinel (never deduplicated): their
    pricing may depend on state the batch layer cannot see.
    """
    if type(network) is UniformNetwork:
        return ("uniform",)
    if type(network) is AlphaBetaNetwork:
        return ("alpha-beta", network.eager)
    return object()


@dataclass
class _Member:
    """One candidate's fully resolved per-batch state."""

    engine: SimulationEngine
    durations: List[float]
    durations_np: np.ndarray
    node: Optional[List[int]]
    node_np: Optional[np.ndarray]
    rank_of: List[int]
    id_of: List[int]
    msg_bytes: Optional[List[int]]
    #: (machine, grid, network, dispatch order) — equal keys provably
    #: produce equal schedules; ``None`` disables deduplication.
    dedup_key: Optional[Tuple] = None


class _PreparedBatch:
    """Shared state of one (program, candidates) batch.

    Construction hoists every candidate-invariant quantity; per-candidate
    state resolves through the module memo tables as members are added, so
    each unique axis is computed once no matter how many candidates share
    it.
    """

    def __init__(self, program: Program, *, dedup: bool = True) -> None:
        self.program = program
        self.dedup = dedup
        self.n = len(program)
        self.succ_indptr, self.succ_ids = program.succ_csr_lists()
        self.indegree_base: List[int] = np.diff(program.pred_indptr_np).tolist()
        self.init_ready = [
            op_id for op_id, deg in enumerate(self.indegree_base) if deg == 0
        ]
        self.members: List[_Member] = []
        # Batch-local caches of the Python-list mirrors (the numpy vectors
        # behind them are additionally memoized module-wide in engine.py).
        self._dur_lists: Dict[Machine, List[float]] = {}
        self._node_lists: Dict[Tuple[int, int], List[int]] = {}
        self._msg_lists: Dict[Tuple, List[int]] = {}
        self._schedules: Dict[Tuple, Schedule] = {}
        self._bounds: Optional[np.ndarray] = None
        self._succ_lists: Optional[List[List[int]]] = None

    def _successor_lists(self) -> List[List[int]]:
        """Per-op successor lists, built once and shared by every member.

        The event loops walk each op's successors exactly once per
        simulated candidate; pre-sliced lists replace two CSR index
        lookups per edge with one direct iteration, which is where the
        per-candidate marginal cost lives once everything else is memoized.
        """
        succ_lists = self._succ_lists
        if succ_lists is None:
            indptr, ids = self.succ_indptr, self.succ_ids
            succ_lists = [
                ids[indptr[i]:indptr[i + 1]] for i in range(self.n)
            ]
            self._succ_lists = succ_lists
        return succ_lists

    # ------------------------------------------------------------------ #
    # Candidate preparation
    # ------------------------------------------------------------------ #
    def add(self, candidate: BatchCandidate) -> int:
        """Resolve one candidate against the shared tables; return its index."""
        if candidate.machine.heterogeneous:
            raise ValueError(
                "batched replay prices nominal durations only; "
                "heterogeneous machines go through "
                "repro.runtime.scenario.run_scenario (plan-level batching "
                "routes scenarios there automatically)"
            )
        engine = SimulationEngine(
            candidate.machine,
            candidate.distribution,
            policy=candidate.policy,
            network=candidate.network,
        )
        program = self.program
        machine = engine.machine
        durations_np = engine.duration_vector(program)
        durations = self._dur_lists.get(machine)
        if durations is None:
            durations = durations_np.tolist()
            self._dur_lists[machine] = durations
        node_np = engine.owner_vector(program)
        node: Optional[List[int]] = None
        dist = engine.distribution
        canonical_dist = type(dist) is BlockCyclicDistribution
        if node_np is not None:
            if canonical_dist:
                grid_key = (dist.grid.rows, dist.grid.cols)
                node = self._node_lists.get(grid_key)
                if node is None:
                    node = node_np.tolist()
                    self._node_lists[grid_key] = node
            else:
                node = node_np.tolist()
        rank_of, id_of = self._rank_order(engine, durations_np, node_np)
        network = engine.network
        msg_bytes: Optional[List[int]] = None
        if network.event_driven:
            net_tok = _network_token(network)
            msg_key = (net_tok, machine) if isinstance(net_tok, tuple) else None
            if msg_key is not None:
                msg_bytes = self._msg_lists.get(msg_key)
            if msg_bytes is None:
                msg_bytes = resolved_message_bytes_vector(
                    network, program, machine
                ).tolist()
                if msg_key is not None:
                    self._msg_lists[msg_key] = msg_bytes
        member = _Member(
            engine=engine,
            durations=durations,
            durations_np=durations_np,
            node=node,
            node_np=node_np,
            rank_of=rank_of,
            id_of=id_of,
            msg_bytes=msg_bytes,
        )
        if self.dedup:
            net_tok = _network_token(network)
            dist_tok: object = (
                (dist.grid.rows, dist.grid.cols)
                if (canonical_dist or node_np is None)
                else object()
            )
            if isinstance(net_tok, tuple) and isinstance(dist_tok, tuple):
                # The schedule is a pure function of (durations, dispatch
                # order, placement, network pricing, core count) — all
                # captured here, so equal keys imply equal schedules.
                member.dedup_key = (machine, dist_tok, net_tok, tuple(id_of))
        self.members.append(member)
        self._bounds = None
        return len(self.members) - 1

    def _rank_order(
        self,
        engine: SimulationEngine,
        durations_np: np.ndarray,
        node_np: Optional[np.ndarray],
    ) -> _DenseOrder:
        """The candidate's dense-rank policy ordering (memoized).

        Keyed like the engine's rank-key memo, except machine-invariant
        policies drop the machine from the key — one computed order then
        serves every machine in the batch.
        """
        policy = engine.policy
        token = policy.cache_token
        # On one node every producer is local, so locality's (remote count,
        # bottom level) keys are (0, list key) for every op: the stable sort
        # is the list policy's, bit for bit.  Fold the token so the two
        # policies share one order entry and the cheaper float ranking.
        if node_np is None and token == ("locality",):
            token = ("list",)
            policy = get_policy("list")
        cacheable = token is not None and not (
            engine.machine.n_nodes > 1
            and type(engine.distribution) is not BlockCyclicDistribution
        )
        key = None
        if cacheable:
            grid_key = (
                (engine.distribution.grid.rows, engine.distribution.grid.cols)
                if engine.machine.n_nodes > 1
                else None
            )
            machine_key = None if policy.rank_machine_invariant else engine.machine
            key = (token, machine_key, grid_key)
            cached = _memo_get(_BATCH_RANK_ORDERS, self.program, key, "batch.order")
            if cached is not None:
                return cached
        if policy is not engine.policy:
            keys = policy.rank_array(
                self.program, durations_np, node_np, engine.machine
            )
        else:
            keys = engine.rank_keys(
                self.program, durations_np, node_np, cacheable=cacheable
            )
        order = _dense_order(keys, self.n)
        if key is not None:
            _memo_put(_BATCH_RANK_ORDERS, self.program, key, order)
        return order

    # ------------------------------------------------------------------ #
    # Analytic lower bounds (no event loop)
    # ------------------------------------------------------------------ #
    def lower_bounds(self) -> np.ndarray:
        """Per-candidate makespan lower bounds in seconds (vectorized).

        ``max(critical path, area)``: no schedule can beat the heaviest
        dependent chain, nor can a node finish before its owner-computes
        work divided by its core count.  The critical paths of all unique
        machines come from one stacked level sweep
        (:meth:`~repro.ir.program.Program.critical_path_many`).
        """
        if self._bounds is not None:
            return self._bounds
        k = len(self.members)
        if self.n == 0 or k == 0:
            self._bounds = np.zeros(k, dtype=np.float64)
            return self._bounds
        bounds = np.empty(k, dtype=np.float64)
        # Bounds are pure functions of (program, machine, grid): resolve
        # through the module memo first so repeated sweeps (and candidates
        # sharing axes) skip the level sweep entirely.
        pending: List[Tuple[int, Optional[Tuple]]] = []
        for i, member in enumerate(self.members):
            machine = member.engine.machine
            dist = member.engine.distribution
            if member.node_np is None:
                bound_key: Optional[Tuple] = (machine, None)
            elif type(dist) is BlockCyclicDistribution:
                bound_key = (machine, (dist.grid.rows, dist.grid.cols))
            else:
                bound_key = None  # placement not keyable
            if bound_key is not None:
                cached = _memo_get(
                    _BATCH_BOUNDS, self.program, bound_key, "batch.bound"
                )
                if cached is not None:
                    bounds[i] = cached
                    continue
            pending.append((i, bound_key))
        if pending:
            machine_row: Dict[Machine, int] = {}
            rows: List[np.ndarray] = []
            for i, _bound_key in pending:
                machine = self.members[i].engine.machine
                if machine not in machine_row:
                    machine_row[machine] = len(rows)
                    rows.append(self.members[i].durations_np)
            cps = self.program.critical_path_many(np.stack(rows))
            for i, bound_key in pending:
                member = self.members[i]
                machine = member.engine.machine
                cp = float(cps[machine_row[machine]])
                cores = machine.cores_per_node
                if member.node_np is None:
                    area = float(member.durations_np.sum()) / cores
                else:
                    node_work = np.bincount(
                        member.node_np,
                        weights=member.durations_np,
                        minlength=machine.n_nodes,
                    )
                    area = float(node_work.max()) / cores
                bound = cp if cp > area else area
                bounds[i] = bound
                if bound_key is not None:
                    _memo_put(_BATCH_BOUNDS, self.program, bound_key, bound)
        self._bounds = bounds
        return bounds

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def schedule(self, index: int) -> Schedule:
        """Simulate (or reuse) candidate ``index``'s schedule."""
        member = self.members[index]
        key = member.dedup_key
        if key is not None:
            cached = self._schedules.get(key)
            if cached is not None:
                REGISTRY.inc("engine.memo.batch.deduped")
                return cached
        if self.n == 0:
            n_nodes = member.engine.machine.n_nodes
            sched = Schedule(
                0.0,
                [],
                [],
                [],
                [0.0] * n_nodes,
                0,
                0,
                core_of_task=[],
                comm_time_per_node=[0.0] * n_nodes,
                messages_per_node=[0] * n_nodes,
            )
        elif member.node is None:
            sched = self._simulate_single(member)
        else:
            sched = self._simulate_multi(member)
        REGISTRY.inc("engine.memo.batch.simulated")
        # Opt-in static verification (REPRO_VERIFY=1): sanitize every
        # freshly simulated schedule exactly like SimulationEngine.run
        # does.  Deduplicated candidates reuse an already-checked object.
        from repro.verify.hooks import verify_enabled

        if verify_enabled():
            from repro.verify.hooks import check_schedule

            check_schedule(
                sched,
                self.program,
                member.engine.machine,
                distribution=member.engine.distribution,
                network=member.engine.network,
            )
        if key is not None:
            self._schedules[key] = sched
        return sched

    def _simulate_single(self, member: _Member) -> Schedule:
        """Single-node drain loop — the engine's, with dense-rank heaps."""
        n = self.n
        rank_of, id_of = member.rank_of, member.id_of
        durations = member.durations
        succ_lists = self._successor_lists()
        indegree = self.indegree_base.copy()
        ready_time = [0.0] * n
        start = [0.0] * n
        finish = [0.0] * n
        core_of_op = [0] * n
        heappush = heapq.heappush
        heappop = heapq.heappop
        cores = member.engine.machine.cores_per_node
        core_heap = [(0.0, c) for c in range(cores)]  # already heap-ordered
        ready = [rank_of[op_id] for op_id in self.init_ready]
        heapq.heapify(ready)
        busy = 0.0
        scheduled = 0
        while ready:
            op_id = id_of[heappop(ready)]
            core_free, core_idx = heappop(core_heap)
            rt = ready_time[op_id]
            t_start = core_free if core_free > rt else rt
            d = durations[op_id]
            t_finish = t_start + d
            start[op_id] = t_start
            finish[op_id] = t_finish
            core_of_op[op_id] = core_idx
            # Accumulated in pop order, like the engine — a vectorized sum
            # would associate differently and break bit-identity.
            busy += d
            heappush(core_heap, (t_finish, core_idx))
            scheduled += 1
            for succ in succ_lists[op_id]:
                if t_finish > ready_time[succ]:
                    ready_time[succ] = t_finish
                deg = indegree[succ] - 1
                indegree[succ] = deg
                if deg == 0:
                    heappush(ready, rank_of[succ])
        if scheduled < n:  # pragma: no cover - defensive (cycle)
            raise RuntimeError("engine stalled: the program has a cycle")
        return Schedule(
            makespan=max(finish),
            start=start,
            finish=finish,
            node_of_task=[0] * n,
            busy_time_per_node=[busy],
            messages=0,
            comm_bytes=0,
            core_of_task=core_of_op,
            comm_time_per_node=[0.0],
            messages_per_node=[0],
        )

    def _simulate_multi(self, member: _Member) -> Schedule:
        """Multi-node loop — greedy node round-robin, dispatch-order NIC."""
        n = self.n
        engine = member.engine
        machine = engine.machine
        network = engine.network
        n_nodes = machine.n_nodes
        rank_of, id_of = member.rank_of, member.id_of
        durations = member.durations
        node_of = member.node
        succ_lists = self._successor_lists()
        indegree = self.indegree_base.copy()
        ready_time = [0.0] * n
        start = [0.0] * n
        finish = [0.0] * n
        core_of_op = [0] * n
        heappush = heapq.heappush
        heappop = heapq.heappop
        cores = machine.cores_per_node

        busy = [0.0] * n_nodes
        messages = 0
        comm_bytes = 0
        sent = [0] * n_nodes
        comm_time = [0.0] * n_nodes
        event_driven = network.event_driven
        transfer = machine.transfer_time()
        handshake = network.handshake_seconds(machine)
        msg_bytes = member.msg_bytes
        msg_cost_cache: Dict[int, Tuple[float, float]] = {}
        seen_transfers: Set[Tuple[int, int]] = set()
        transfer_arrival: Dict[Tuple[int, int], float] = {}
        nic_free = [0.0] * n_nodes

        core_heaps: List[List[Tuple[float, int]]] = [
            [(0.0, c) for c in range(cores)] for _ in range(n_nodes)
        ]
        ready_heaps: List[List[int]] = [[] for _ in range(n_nodes)]
        for op_id in self.init_ready:
            heappush(ready_heaps[node_of[op_id]], rank_of[op_id])

        scheduled = 0
        while scheduled < n:
            progressed = False
            for node in range(n_nodes):
                heap = ready_heaps[node]
                core_heap = core_heaps[node]
                while heap:
                    op_id = id_of[heappop(heap)]
                    core_free, core_idx = heappop(core_heap)
                    rt = ready_time[op_id]
                    t_start = core_free if core_free > rt else rt
                    d = durations[op_id]
                    t_finish = t_start + d
                    start[op_id] = t_start
                    finish[op_id] = t_finish
                    core_of_op[op_id] = core_idx
                    busy[node] += d
                    heappush(core_heap, (t_finish, core_idx))
                    scheduled += 1
                    progressed = True
                    for succ in succ_lists[op_id]:
                        dst = node_of[succ]
                        arrival = t_finish
                        if dst != node:
                            tkey = (op_id, dst)
                            if event_driven:
                                cached = transfer_arrival.get(tkey)
                                if cached is None:
                                    n_bytes = msg_bytes[op_id]
                                    cost = msg_cost_cache.get(n_bytes)
                                    if cost is None:
                                        cost = (
                                            machine.injection_seconds(n_bytes),
                                            network.message_seconds(
                                                n_bytes, machine
                                            ),
                                        )
                                        msg_cost_cache[n_bytes] = cost
                                    injection, wire = cost
                                    inject_start = t_finish + handshake
                                    if nic_free[node] > inject_start:
                                        inject_start = nic_free[node]
                                    nic_free[node] = inject_start + injection
                                    cached = inject_start + wire
                                    transfer_arrival[tkey] = cached
                                    messages += 1
                                    comm_bytes += n_bytes
                                    sent[node] += 1
                                    comm_time[node] += injection
                                arrival = cached
                            else:
                                arrival += transfer
                                if tkey not in seen_transfers:
                                    seen_transfers.add(tkey)
                                    messages += 1
                                    comm_bytes += machine.tile_bytes
                                    sent[node] += 1
                                    comm_time[node] += transfer
                        if arrival > ready_time[succ]:
                            ready_time[succ] = arrival
                        deg = indegree[succ] - 1
                        indegree[succ] = deg
                        if deg == 0:
                            heappush(ready_heaps[dst], rank_of[succ])
            if not progressed:  # pragma: no cover - defensive (cycle)
                raise RuntimeError("engine stalled: the program has a cycle")

        return Schedule(
            makespan=max(finish),
            start=start,
            finish=finish,
            node_of_task=list(node_of),
            busy_time_per_node=busy,
            messages=messages,
            comm_bytes=comm_bytes,
            core_of_task=core_of_op,
            comm_time_per_node=comm_time,
            messages_per_node=sent,
        )


class BatchEngine:
    """Evaluate many engine candidates of one program in a single pass.

    ``dedup=True`` (default) lets candidates with provably identical
    schedules share one :class:`~repro.runtime.scheduler.Schedule` object;
    ``dedup=False`` forces one fresh simulation per candidate.
    """

    def __init__(self, *, dedup: bool = True) -> None:
        self.dedup = dedup

    def prepare(
        self,
        program: Union[Program, TaskGraph],
        candidates: Sequence[BatchCandidate],
    ) -> _PreparedBatch:
        """Hoist all shared state for ``candidates`` (no event loop yet)."""
        if isinstance(program, TaskGraph):
            program = Program.from_task_graph(program)
        REGISTRY.inc("engine.memo.batch.candidates", len(candidates))
        prepared = _PreparedBatch(program, dedup=self.dedup)
        for candidate in candidates:
            prepared.add(candidate)
        return prepared

    def run_batch(
        self,
        program: Union[Program, TaskGraph],
        candidates: Sequence[BatchCandidate],
    ) -> List[Schedule]:
        """Simulate every candidate.

        Returned schedules are bit-identical to per-candidate
        :meth:`~repro.runtime.engine.SimulationEngine.run` calls with the
        same parameters, in candidate order.
        """
        tracer = current_tracer()
        with tracer.phase("batch.prepare") if tracer else nullcontext():
            prepared = self.prepare(program, candidates)
        with tracer.phase("batch.simulate") if tracer else nullcontext():
            return [prepared.schedule(i) for i in range(len(candidates))]

    def lower_bounds(
        self,
        program: Union[Program, TaskGraph],
        candidates: Sequence[BatchCandidate],
    ) -> List[float]:
        """Per-candidate makespan lower bounds (seconds), no event loop."""
        return self.prepare(program, candidates).lower_bounds().tolist()


def simulate_batch(
    program: Union[Program, TaskGraph],
    candidates: Sequence[BatchCandidate],
    *,
    dedup: bool = True,
) -> List[Schedule]:
    """One-shot wrapper: batch-simulate ``candidates`` over ``program``."""
    return BatchEngine(dedup=dedup).run_batch(program, candidates)


# --------------------------------------------------------------------------- #
# Plan-level batching (the tuning / sweep entry point)
# --------------------------------------------------------------------------- #
@dataclass
class PlanOutcome:
    """One resolved plan's batched evaluation."""

    result: Optional[SimulationResult] = None
    score: Optional[float] = None
    error: Optional[str] = None
    pruned: bool = False
    #: The raised exception behind ``error`` (for callers that re-raise).
    exception: Optional[BaseException] = field(
        default=None, repr=False, compare=False
    )


def _outcome_score(
    objective: Optional[str], result: SimulationResult
) -> Optional[float]:
    if objective is None:
        return None
    if objective == "makespan":
        return float(result.time_seconds)
    if objective == "gflops":
        return float(result.gflops)
    if objective == "comm-time":
        return float(result.comm_seconds)
    if objective == "robust-makespan":
        # p95 across Monte-Carlo draws; deterministic runs (no scenario,
        # or a fault-free one) degrade to the nominal makespan.
        if result.distribution is not None:
            return float(result.distribution.p95)
        return float(result.time_seconds)
    raise ValueError(f"unknown batch objective {objective!r}")


def simulate_resolved_batch(
    resolved_plans: Sequence,
    *,
    objective: Optional[str] = None,
    prune: bool = True,
    dedup: bool = True,
) -> List[PlanOutcome]:
    """Batch-simulate many resolved plans; results match ``execute`` exactly.

    ``resolved_plans`` are :class:`~repro.api.resolver.ResolvedPlan`
    instances (possibly spanning several DAG shapes — candidates are
    grouped per compiled program).  ``objective`` selects the extracted
    score (``"makespan"`` / ``"gflops"`` / ``"comm-time"`` /
    ``"robust-makespan"``; ``None`` returns raw
    :class:`~repro.runtime.simulator.SimulationResult` objects only).
    With ``prune=True`` and a bounded objective, candidates are evaluated
    most-promising-first against the engine's analytic lower bounds and
    strictly hopeless ones are skipped (``pruned=True``, ``result=None``)
    without touching the event loop; the surviving winner is the same one
    an exhaustive pass would pick.  ``comm-time`` has no valid lower
    bound, so it never prunes.  ``robust-makespan`` prunes against the
    *nominal* bound, which stays valid because every scenario
    perturbation factor is ``>= 1`` (draws only ever get slower).

    Plans carrying a non-trivial scenario bypass the batched event loop
    for that candidate and run the Monte-Carlo scenario driver
    (:func:`repro.runtime.scenario.run_scenario`) instead — matching what
    ``execute`` does for the same plan, draw for draw.

    A per-plan resolution or simulation failure is captured on that plan's
    :class:`PlanOutcome` (``error`` / ``exception``) instead of aborting
    the batch.
    """
    outcomes = [PlanOutcome() for _ in resolved_plans]
    REGISTRY.inc("engine.memo.batch.candidates", len(resolved_plans))
    tracer = current_tracer()

    # ---------------- prepare: resolve every candidate, group by program
    groups: Dict[int, _PreparedBatch] = {}
    #: Per candidate: (group, member, setup, resolved plan, post, scenario).
    prep: List[Optional[Tuple]] = [None] * len(resolved_plans)
    with tracer.phase("batch.prepare") if tracer else nullcontext():
        for i, rp in enumerate(resolved_plans):
            try:
                if rp.stage == "gesvd":
                    raise ValueError(
                        "stage 'gesvd' is only supported by the 'numeric' "
                        "backend (the simulator models GE2BND and GE2VAL)"
                    )
                setup = _ge2bnd_setup(
                    rp.m,
                    rp.n,
                    rp.machine,
                    tree=rp.tree,
                    algorithm=rp.variant,
                    grid=rp.grid,
                )
                group = groups.get(id(setup.program))
                if group is None:
                    group = _PreparedBatch(setup.program, dedup=dedup)
                    groups[id(setup.program)] = group
                member = group.add(
                    BatchCandidate(
                        machine=rp.machine,
                        distribution=setup.distribution,
                        policy=rp.plan.policy,
                        network=rp.plan.network,
                    )
                )
                post = (
                    post_processing_seconds(rp.n, rp.machine)
                    if rp.stage == "ge2val"
                    else 0.0
                )
                # Trivial scenarios (no heterogeneity, no faults, no noise)
                # replay through the batched loop bit-identically; only the
                # name survives, to label the result like execute() does.
                scen = getattr(rp, "scenario", None)
                if scen is not None and scen.is_trivial:
                    scen = None
                scen_name = getattr(getattr(rp, "scenario", None), "name", None)
                prep[i] = (group, member, setup, rp, post, scen, scen_name)
            except Exception as exc:
                outcomes[i].error = f"{type(exc).__name__}: {exc}"
                outcomes[i].exception = exc

    # ---------------- bound: optimistic candidate costs, no event loop
    can_prune = prune and objective in ("makespan", "gflops", "robust-makespan")
    bound_cost: List[Optional[float]] = [None] * len(resolved_plans)
    if can_prune:
        for i, entry in enumerate(prep):
            if entry is None:
                continue
            group, member, setup, rp, post, _scen, _scen_name = entry
            bound_time = float(group.lower_bounds()[member]) + post
            if objective in ("makespan", "robust-makespan"):
                bound_cost[i] = bound_time
            else:  # gflops is maximized: cost is the negated score
                if rp.stage == "ge2val":
                    flops = ge2val_reported_flops(rp.m, rp.n)
                else:
                    flops = ge2bnd_reported_flops(rp.m, rp.n)
                bound_cost[i] = (
                    -(flops / bound_time / 1e9) if bound_time > 0 else None
                )

    # ---------------- evaluate: ascending bound, incumbent pruning
    order = sorted(
        (i for i in range(len(resolved_plans)) if prep[i] is not None),
        key=lambda i: (bound_cost[i] is not None, bound_cost[i] or 0.0, i),
    )
    best_cost = float("inf")
    with tracer.phase("batch.simulate") if tracer else nullcontext():
        for i in order:
            group, member, setup, rp, post, scen, scen_name = prep[i]
            bc = bound_cost[i]
            # Strictly-worse only, with a relative-epsilon slack so float
            # noise in the bound arithmetic can never prune a tied winner.
            if (
                can_prune
                and bc is not None
                and bc > best_cost + 1e-12 * max(abs(best_cost), 1.0)
            ):
                outcomes[i].pruned = True
                REGISTRY.inc("engine.memo.batch.pruned")
                continue
            try:
                if scen is not None:
                    run = run_scenario(
                        setup.program,
                        rp.machine,
                        scen,
                        setup.distribution,
                        policy=rp.plan.policy,
                        network=rp.plan.network,
                        draws=getattr(rp, "draws", None),
                        seed=rp.plan.seed,
                    )
                    result = replace(
                        _ge2bnd_result(
                            setup,
                            rp.machine,
                            run.schedule,
                            policy=rp.plan.policy,
                            network=rp.plan.network,
                        ),
                        scenario=scen_name,
                        distribution=run.distribution,
                    )
                else:
                    schedule = group.schedule(member)
                    result = _ge2bnd_result(
                        setup,
                        rp.machine,
                        schedule,
                        policy=rp.plan.policy,
                        network=rp.plan.network,
                    )
                    if scen_name is not None:
                        result = replace(result, scenario=scen_name)
                if rp.stage == "ge2val":
                    result = _ge2val_result(result, rp.machine, rp.variant)
                outcomes[i].result = result
                score = _outcome_score(objective, result)
                outcomes[i].score = score
                if score is not None:
                    cost = -score if objective == "gflops" else score
                    if cost < best_cost:
                        best_cost = cost
            except Exception as exc:
                outcomes[i].error = f"{type(exc).__name__}: {exc}"
                outcomes[i].exception = exc
    return outcomes
