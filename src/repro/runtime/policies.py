"""Pluggable scheduling policies for the simulation engine.

A :class:`SchedulingPolicy` decides *in which order* ready ops are picked
off a node's ready queue; everything else (owner-computes mapping, core
events, communication delays) belongs to the
:class:`~repro.runtime.engine.SimulationEngine`.  A policy ranks the whole
program up front: :meth:`SchedulingPolicy.rank` returns one sortable key
per op, and the engine always breaks ties on the op id — stable task-id
ordering, so simulated makespans are bit-reproducible across runs and
Python hash seeds.

Available policies (see :data:`POLICIES`):

=============== ==============================================================
``list``        duration-weighted bottom levels — the legacy
                :class:`~repro.runtime.scheduler.ListScheduler` behaviour,
                reproduced exactly
``critical-path`` bottom levels in Table-I weight units (``nb^3/3`` flops),
                i.e. priorities from the paper's critical-path analysis
``locality``    block-cyclic-aware: prefer ops with the fewest off-node
                producers (cheapest to start under owner-computes), bottom
                level breaking ties
``fifo``        program order (the tracer's sequentially consistent order)
``weight``      heaviest kernel first
``random``      seeded uniform-random priorities — the chaos baseline that
                shows how much the smarter orders actually buy
=============== ==============================================================
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

from repro.ir.program import Program
from repro.runtime.machine import Machine


class SchedulingPolicy:
    """Base class: a named ranking over the ops of a program.

    Subclasses implement :meth:`rank`; lower keys are scheduled first.
    Keys may be floats or tuples of floats, but every op's key must be
    comparable with every other's.

    Policies may additionally implement :meth:`rank_array`, the vectorized
    hook the engine's structure-of-arrays fast path calls with numpy
    inputs; the built-in policies rank through the program's topological
    level sweeps there, producing bit-identical keys to :meth:`rank`.  A
    non-``None`` :attr:`cache_token` lets the engine memoize the computed
    keys per (program, machine, grid) — static rankings only.
    """

    #: Registry name (e.g. ``"list"``); also used by the CLI.
    name: str = ""
    #: One-line description for ``repro policies``.
    description: str = ""

    @property
    def cache_token(self) -> Optional[Tuple]:
        """Hashable identity for rank-key memoization (``None`` = don't).

        The default is ``None``: a custom policy's ranking may depend on
        state the engine cannot see, so it is re-ranked on every run
        unless it opts in by returning a token that captures its full
        configuration.
        """
        return None

    @property
    def rank_machine_invariant(self) -> bool:
        """Whether the ranking ignores the machine's duration model.

        ``True`` means the keys depend only on the program (and, for
        node-aware policies, the grid): the batch engine may then share
        one computed ranking across candidates that differ only in their
        machine.  The conservative default is ``False``.
        """
        return False

    def rank(
        self,
        program: Program,
        durations: Sequence[float],
        node_of_op: Sequence[int],
        machine: Machine,
    ) -> List[object]:
        """One sort key per op (ascending = more urgent)."""
        raise NotImplementedError

    def rank_array(
        self,
        program: Program,
        durations: np.ndarray,
        node_of_op: Optional[np.ndarray],
        machine: Machine,
    ) -> Optional[List[object]]:
        """Vectorized ranking for the engine fast path.

        ``durations`` is the per-op duration vector and ``node_of_op`` the
        owner-node vector (``None`` on a single node).  Return the key list
        (or a numpy array), or ``None`` to fall back to :meth:`rank`.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ListPolicy(SchedulingPolicy):
    """Duration-weighted bottom levels: the legacy list scheduler, exactly."""

    name = "list"
    description = (
        "greedy list scheduling by bottom level (longest downstream path in "
        "simulated seconds); reproduces the legacy ListScheduler bit for bit"
    )

    @property
    def cache_token(self):
        return ("list",)

    def rank(self, program, durations, node_of_op, machine):
        return [-level for level in program.bottom_levels(durations)]

    def rank_array(self, program, durations, node_of_op, machine):
        return (-program.bottom_levels_np(durations)).tolist()


class CriticalPathPolicy(SchedulingPolicy):
    """Bottom levels in Table-I weight units (machine-independent)."""

    name = "critical-path"
    description = (
        "bottom level measured in nb^3/3 flop weights (Section IV units) "
        "instead of simulated seconds"
    )

    @property
    def cache_token(self):
        return ("critical-path",)

    @property
    def rank_machine_invariant(self):
        return True

    def rank(self, program, durations, node_of_op, machine):
        weights = [float(op.weight) for op in program.ops]
        return [-level for level in program.bottom_levels(weights)]

    def rank_array(self, program, durations, node_of_op, machine):
        weights = program.weights_np.astype(np.float64)
        return (-program.bottom_levels_np(weights)).tolist()


class LocalityPolicy(SchedulingPolicy):
    """Block-cyclic-aware: fewest off-node producers first.

    Under owner-computes every op's node is fixed, so the number of
    predecessors mapped to *other* nodes measures how much remote data the
    op must wait for.  Preferring well-fed ops keeps nodes working on data
    they already hold; bottom level breaks ties.  On one node this policy
    degenerates to ``list`` (every producer is local).
    """

    name = "locality"
    description = (
        "prefer ops whose producers are on the same node (block-cyclic "
        "owner-computes), then by bottom level"
    )

    @property
    def cache_token(self):
        return ("locality",)

    def rank(self, program, durations, node_of_op, machine):
        levels = program.bottom_levels(durations)
        keys: List[Tuple[float, float]] = []
        for i in range(len(program)):
            remote = sum(
                1 for pred in program.predecessors(i)
                if node_of_op[pred] != node_of_op[i]
            )
            keys.append((float(remote), -levels[i]))
        return keys

    def rank_array(self, program, durations, node_of_op, machine):
        levels = program.bottom_levels_np(durations)
        n = len(program)
        if node_of_op is None:
            remote = np.zeros(n, dtype=np.float64)
        else:
            # Edge-wise remote-producer count: compare owner nodes across
            # every dependency edge, then segment-sum per consumer.
            dst = np.repeat(
                np.arange(n, dtype=np.int64),
                np.diff(program.pred_indptr_np),
            )
            cross = dst[node_of_op[program.pred_ids_np] != node_of_op[dst]]
            remote = np.bincount(cross, minlength=n).astype(np.float64)
        return list(zip(remote.tolist(), (-levels).tolist()))


class FifoPolicy(SchedulingPolicy):
    """Program order (the drivers' sequentially consistent order)."""

    name = "fifo"
    description = "ops in program order (insertion order is topological)"

    @property
    def cache_token(self):
        return ("fifo",)

    @property
    def rank_machine_invariant(self):
        return True

    def rank(self, program, durations, node_of_op, machine):
        return [float(i) for i in range(len(program))]

    def rank_array(self, program, durations, node_of_op, machine):
        return np.arange(len(program), dtype=np.float64).tolist()


class WeightPolicy(SchedulingPolicy):
    """Heaviest kernel first."""

    name = "weight"
    description = "heaviest kernel duration first, ignoring the DAG below it"

    @property
    def cache_token(self):
        return ("weight",)

    def rank(self, program, durations, node_of_op, machine):
        return [-d for d in durations]

    def rank_array(self, program, durations, node_of_op, machine):
        return (-durations).tolist()


class RandomPolicy(SchedulingPolicy):
    """Seeded uniform-random priorities (the baseline other policies beat).

    The keys come from :class:`random.Random` seeded with ``seed``, so the
    policy is fully reproducible and independent of ``PYTHONHASHSEED``.
    """

    name = "random"
    description = "seeded random priorities; the baseline the others must beat"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    @property
    def cache_token(self):
        return ("random", self.seed)

    @property
    def rank_machine_invariant(self):
        return True

    def rank(self, program, durations, node_of_op, machine):
        rng = random.Random(self.seed)
        return [rng.random() for _ in range(len(program))]

    def rank_array(self, program, durations, node_of_op, machine):
        # The seeded stream is already O(n) and hash-seed independent; the
        # fast path just reuses it (and memoizes per seed via cache_token).
        return self.rank(program, durations, node_of_op, machine)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomPolicy(seed={self.seed})"


#: Name -> policy class.  Instantiate via :func:`get_policy`.
POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    cls.name: cls
    for cls in (
        ListPolicy,
        CriticalPathPolicy,
        LocalityPolicy,
        FifoPolicy,
        WeightPolicy,
        RandomPolicy,
    )
}


def get_policy(policy: Union[str, SchedulingPolicy], **kwargs) -> SchedulingPolicy:
    """Coerce a name or instance to a :class:`SchedulingPolicy`."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        cls = POLICIES[str(policy).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; available: {sorted(POLICIES)}"
        ) from None
    return cls(**kwargs)


def available_policies() -> List[Tuple[str, str]]:
    """``(name, description)`` pairs, sorted by name (for the CLI listing)."""
    return [(name, POLICIES[name].description) for name in sorted(POLICIES)]
