"""Pluggable fault and network-noise models for scenario simulation.

The deterministic engine prices every op with one nominal duration and
every message with one nominal wire time.  Real machines are messier:
cores fail mid-kernel and re-execute, background daemons turn a kernel
into a straggler, links jitter.  This module provides the stochastic
*perturbation* layer of :mod:`repro.runtime.scenario`, modeled on the
pluggable ``FaultModel`` hierarchy of the slp framework (see PAPERS.md):

* a :class:`FaultModel` turns an rng into a ``(n_draws, n_ops)`` matrix of
  **duration factors** — op ``j`` in draw ``i`` runs for
  ``nominal * factors[i, j]`` seconds — plus a per-draw fault-event count
  for the observability histograms;
* a :class:`NoiseModel` does the same for **wire-time factors**: every
  message carrying op ``j``'s output in draw ``i`` spends
  ``nominal_wire * factors[i, j]`` seconds on the wire (NIC injection
  occupancy stays nominal — noise models the link, not the sender).

Every factor is ``>= 1.0`` by construction.  That invariant is what keeps
the analytic ``max(critical path, area)`` lower bounds of
:mod:`repro.runtime.batch` valid on every draw (perturbations only ever
slow a schedule down), so the ``robust-makespan`` tuning objective can
keep pruning.  Models are frozen dataclasses: hashable (they ride on
frozen :class:`~repro.runtime.scenario.Scenario` instances and tuning
cache keys) and reproducible (all randomness flows through the caller's
seeded generator; the models themselves hold no state).

Registries follow :mod:`repro.runtime.network`: look a model up by name
through :func:`get_fault_model` / :func:`get_noise_model`, optionally with
constructor overrides (``get_fault_model("fail-stop", prob=0.01)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Type, Union

import numpy as np

__all__ = [
    "FAULT_MODELS",
    "NOISE_MODELS",
    "FailStopFaults",
    "FaultModel",
    "LinkJitterNoise",
    "NoFaults",
    "NoNoise",
    "NoiseModel",
    "StragglerFaults",
    "available_fault_models",
    "available_noise_models",
    "fail_stop_factors",
    "get_fault_model",
    "get_noise_model",
]


def _validate_probability(prob: float, what: str) -> None:
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"{what} must be in [0, 1], got {prob}")


def _validate_positive(value: float, what: str) -> None:
    if not value > 0.0 or not np.isfinite(value):
        raise ValueError(f"{what} must be a positive finite number, got {value}")


# --------------------------------------------------------------------------- #
# Fault models: per-op duration factors
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultModel:
    """Base class: how faults turn into per-op duration factors.

    Subclasses set :attr:`name` / :attr:`description` and implement
    :meth:`sample`.  The base class is the identity model (no faults).
    """

    #: Registry name (e.g. ``"fail-stop"``); also used by the CLI.
    name = "none"
    #: One-line description for ``repro scenarios``.
    description = "no faults: every op runs at its nominal duration"

    @property
    def deterministic(self) -> bool:
        """Whether :meth:`sample` always returns all-ones factors."""
        return True

    def sample(
        self, rng: np.random.Generator, n_draws: int, n_ops: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw duration factors and fault-event counts.

        Returns ``(factors, events)``: ``factors`` has shape
        ``(n_draws, n_ops)`` with every entry ``>= 1.0``; ``events`` has
        shape ``(n_draws,)`` and counts the fault events of each draw
        (for the ``engine.mc.fault_events`` histogram).  Implementations
        must consume randomness from ``rng`` in a fixed, documented order
        so a given seed always produces the same draws.
        """
        return (
            np.ones((n_draws, n_ops), dtype=np.float64),
            np.zeros(n_draws, dtype=np.int64),
        )

    def spec(self) -> Tuple:
        """Hashable identity of this model (for tuning cache keys)."""
        return (type(self).__name__,) + tuple(
            sorted(self.__dict__.items())
        )


@dataclass(frozen=True)
class NoFaults(FaultModel):
    """The identity model, registered under ``"none"``."""


def fail_stop_factors(counts: np.ndarray, rework: float) -> np.ndarray:
    """Duration factors of ops that failed ``counts`` times each.

    A fail-stop fault loses the in-flight execution; recovery re-runs the
    op, paying ``rework`` extra nominal durations per failure (``rework =
    1.0`` means a clean from-scratch re-execution; smaller values model
    checkpoint restart).  Exposed as a pure function so tests can inject
    exact fault counts without touching an rng.
    """
    return 1.0 + rework * np.asarray(counts, dtype=np.float64)


@dataclass(frozen=True)
class FailStopFaults(FaultModel):
    """Fail-stop faults with re-execution cost.

    Each op execution independently fails with probability ``prob``; a
    failed execution is retried until it succeeds, so the number of
    failures per op is geometric with mean ``prob / (1 - prob)`` and the
    realized duration is ``nominal * (1 + rework * n_failures)``.
    """

    name = "fail-stop"
    description = (
        "each op execution fails w.p. prob and re-executes (geometric "
        "retries), paying rework extra nominal durations per failure"
    )

    prob: float = 0.01
    rework: float = 1.0

    def __post_init__(self) -> None:
        _validate_probability(self.prob, "fail-stop fault probability")
        if self.prob >= 1.0:
            raise ValueError("fail-stop prob must be < 1 (an op must be able to finish)")
        _validate_positive(self.rework, "fail-stop rework cost")

    @property
    def deterministic(self) -> bool:
        return self.prob == 0.0

    def sample(
        self, rng: np.random.Generator, n_draws: int, n_ops: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self.prob == 0.0:
            return FaultModel.sample(self, rng, n_draws, n_ops)
        # One geometric block draw: numpy's geometric counts trials to the
        # first success (>= 1), so failures-before-success is that minus 1.
        failures = rng.geometric(1.0 - self.prob, size=(n_draws, n_ops)) - 1
        return (
            fail_stop_factors(failures, self.rework),
            failures.sum(axis=1).astype(np.int64),
        )


@dataclass(frozen=True)
class StragglerFaults(FaultModel):
    """Straggler slowdowns: rare ops run a random factor slower.

    Each op independently straggles with probability ``prob``; a straggler
    runs ``1 + Exponential(scale)`` times its nominal duration.  The
    conditional excess ``factor - 1`` is exactly ``Exponential(scale)``
    (mean ``scale``), which gives the statistical tests a closed-form
    distribution to validate against.
    """

    name = "straggler"
    description = (
        "each op straggles w.p. prob, running 1 + Exp(scale) times its "
        "nominal duration"
    )

    prob: float = 0.05
    scale: float = 0.5

    def __post_init__(self) -> None:
        _validate_probability(self.prob, "straggler probability")
        _validate_positive(self.scale, "straggler scale")

    @property
    def deterministic(self) -> bool:
        return self.prob == 0.0

    def sample(
        self, rng: np.random.Generator, n_draws: int, n_ops: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self.prob == 0.0:
            return FaultModel.sample(self, rng, n_draws, n_ops)
        # Fixed consumption order: the straggle mask first, then the
        # excess draws (always n_draws * n_ops of each, so the stream
        # position never depends on the outcomes).
        straggles = rng.random((n_draws, n_ops)) < self.prob
        excess = rng.exponential(self.scale, size=(n_draws, n_ops))
        factors = 1.0 + np.where(straggles, excess, 0.0)
        return factors, straggles.sum(axis=1).astype(np.int64)


# --------------------------------------------------------------------------- #
# Noise models: per-message wire-time factors
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class NoiseModel:
    """Base class: how network noise turns into wire-time factors.

    The factor matrix is indexed like the fault factors — entry
    ``[draw, op]`` multiplies the wire time of every message carrying op
    ``op``'s output in that draw.  The base class is the identity model.
    """

    name = "none"
    description = "no network noise: every message takes its nominal wire time"

    @property
    def deterministic(self) -> bool:
        return True

    def sample(
        self, rng: np.random.Generator, n_draws: int, n_ops: int
    ) -> np.ndarray:
        """Wire-time factors, shape ``(n_draws, n_ops)``, every entry >= 1."""
        return np.ones((n_draws, n_ops), dtype=np.float64)

    def spec(self) -> Tuple:
        return (type(self).__name__,) + tuple(sorted(self.__dict__.items()))


@dataclass(frozen=True)
class NoNoise(NoiseModel):
    """The identity model, registered under ``"none"``."""


@dataclass(frozen=True)
class LinkJitterNoise(NoiseModel):
    """Half-normal multiplicative link jitter.

    Each message's wire time is stretched by ``exp(sigma * |Z|)`` with
    ``Z`` standard normal — always ``>= 1`` (contention and retransmits
    only ever delay a message), median ``exp(sigma * 0.674)``.
    """

    name = "link-jitter"
    description = (
        "each message's wire time stretches by exp(sigma * |N(0,1)|) "
        "(always >= 1; models link contention bursts)"
    )

    sigma: float = 0.25

    def __post_init__(self) -> None:
        _validate_positive(self.sigma, "link-jitter sigma")

    @property
    def deterministic(self) -> bool:
        return False

    def sample(
        self, rng: np.random.Generator, n_draws: int, n_ops: int
    ) -> np.ndarray:
        return np.exp(self.sigma * np.abs(rng.standard_normal((n_draws, n_ops))))


# --------------------------------------------------------------------------- #
# Registries (the network-model pattern: name -> class, get_* to coerce)
# --------------------------------------------------------------------------- #
#: Name -> fault model class.  Instantiate via :func:`get_fault_model`.
FAULT_MODELS: Dict[str, Type] = {
    cls.name: cls for cls in (NoFaults, FailStopFaults, StragglerFaults)
}

#: Name -> noise model class.  Instantiate via :func:`get_noise_model`.
NOISE_MODELS: Dict[str, Type] = {
    cls.name: cls for cls in (NoNoise, LinkJitterNoise)
}


def _get_model(registry: Dict[str, Type], kind: str, model, kwargs):
    if not isinstance(model, str):
        if kwargs:
            raise ValueError(
                f"keyword arguments only apply when the {kind} model is "
                f"given by name; got an instance of {type(model).__name__} "
                f"plus {sorted(kwargs)}"
            )
        return model
    try:
        cls = registry[model.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown {kind} model {model!r}; available: {sorted(registry)}"
        ) from None
    return cls(**kwargs)


def get_fault_model(model: Union[str, FaultModel], **kwargs):
    """Coerce a name or instance to a fault model."""
    return _get_model(FAULT_MODELS, "fault", model, kwargs)


def get_noise_model(model: Union[str, NoiseModel], **kwargs):
    """Coerce a name or instance to a noise model."""
    return _get_model(NOISE_MODELS, "noise", model, kwargs)


def available_fault_models() -> List[Tuple[str, str]]:
    """``(name, description)`` pairs, sorted by name (for the CLI listing)."""
    return [(name, FAULT_MODELS[name].description) for name in sorted(FAULT_MODELS)]


def available_noise_models() -> List[Tuple[str, str]]:
    """``(name, description)`` pairs, sorted by name (for the CLI listing)."""
    return [(name, NOISE_MODELS[name].description) for name in sorted(NOISE_MODELS)]
