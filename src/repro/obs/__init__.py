"""Observability: execution tracing, metrics, and profiling.

The paper's whole methodology is trace-driven — scheduling quality, idle
time, and communication overlap are read off execution timelines — and
this package is the repo's counterpart to that tooling:

* :mod:`repro.obs.tracer` — opt-in structured tracing (``REPRO_TRACE=1``
  or ``trace=`` on the API): wall-clock phase spans plus per-task /
  per-transfer simulated-time events, recorded *after* the engine's event
  loop from state the loop already computes, so traced and untraced
  schedules are bit-identical by construction;
* :mod:`repro.obs.export` — Chrome/Perfetto trace-event JSON, a schema
  validator, and text/SVG Gantt timelines;
* :mod:`repro.obs.metrics` — a stdlib metrics registry (cache hit/miss,
  engine memo traffic) and the per-run snapshot on ``RunResult.metrics``;
* :mod:`repro.obs.util` — the shared per-node/per-core busy/idle helpers;
* :mod:`repro.obs.profile` — ``REPRO_PROFILE=1`` span timers;
* :mod:`repro.obs.clock` — the injectable clock that keeps wall-clock
  reads out of the deterministic core.

Layering: nothing here imports :mod:`repro.runtime` at module scope
(schedules and machines are duck-typed), so every runtime layer can
report into ``obs`` without cycles.
"""

from repro.obs.clock import Clock, FakeClock, WallClock
from repro.obs.export import (
    KERNEL_GLYPHS,
    chrome_trace,
    gantt_svg,
    gantt_text,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import REGISTRY, Histogram, MetricsRegistry, run_metrics
from repro.obs.profile import (
    PROFILE_ENV,
    profile_enabled,
    profile_snapshot,
    profiled,
    reset_profiles,
)
from repro.obs.tracer import (
    TRACE_ENV,
    TRACE_FILE_ENV,
    EngineRun,
    PhaseSpan,
    Tracer,
    TransferRecord,
    current_tracer,
    default_trace_path,
    trace_enabled,
)
from repro.obs.util import (
    core_busy_seconds,
    idle_seconds_per_node,
    node_busy_fractions,
    utilization_summary,
)

__all__ = [
    "Clock",
    "FakeClock",
    "WallClock",
    "KERNEL_GLYPHS",
    "chrome_trace",
    "gantt_svg",
    "gantt_text",
    "validate_chrome_trace",
    "write_chrome_trace",
    "REGISTRY",
    "Histogram",
    "MetricsRegistry",
    "run_metrics",
    "PROFILE_ENV",
    "profile_enabled",
    "profile_snapshot",
    "profiled",
    "reset_profiles",
    "TRACE_ENV",
    "TRACE_FILE_ENV",
    "EngineRun",
    "PhaseSpan",
    "Tracer",
    "TransferRecord",
    "current_tracer",
    "default_trace_path",
    "trace_enabled",
    "core_busy_seconds",
    "idle_seconds_per_node",
    "node_busy_fractions",
    "utilization_summary",
]
