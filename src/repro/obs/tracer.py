"""Structured execution tracing for the compile → rank → simulate pipeline.

A :class:`Tracer` collects two kinds of timeline:

* **wall-clock phase spans** — compile, dependency analysis, rank,
  simulate — measured with the tracer's injectable
  :class:`~repro.obs.clock.Clock` (the deterministic core never reads a
  clock itself; see :mod:`repro.obs.clock`);
* **simulated-time execution events** — one task event per op (kernel,
  node, core, topological level, start/finish) plus one transfer event
  per deduplicated message (bytes, handshake / queue / injection / wire
  phases) and the ready-queue depth derived from the engine's release
  times.

The crucial property is that the engine records *nothing inside its event
loop*: every execution event is reconstructed after the loop from state
the loop already computes (``start`` / ``finish`` / ``ready_time`` /
``core_of`` arrays and the transfer-arrival dedup map).  Tracing on or
off therefore cannot perturb a schedule — bit-identity is structural, not
a property the tests merely hope for — and the disabled path costs one
``is None`` test per run.

A tracer is *activated* (:meth:`Tracer.activate`) to make it ambient for
the current thread; the IR compiler and the simulation engine pick it up
via :func:`current_tracer` so no intermediate layer has to thread a
tracer argument through its signature.  ``REPRO_TRACE=1`` turns tracing
on globally for API/CLI entry points (:func:`trace_enabled`), with
``REPRO_TRACE_FILE`` overriding where the CLI writes the trace JSON.

Export to Chrome/Perfetto trace-event JSON and Gantt timelines lives in
:mod:`repro.obs.export`; :meth:`Tracer.to_chrome_trace` and
:meth:`Tracer.write` are thin front doors to it.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

#: Environment variable turning tracing on for API / CLI entry points.
TRACE_ENV = "REPRO_TRACE"
#: Environment variable overriding the CLI's default trace output path.
TRACE_FILE_ENV = "REPRO_TRACE_FILE"


def trace_enabled() -> bool:
    """True when ``REPRO_TRACE`` is set to a non-empty, non-"0" value."""
    return os.environ.get(TRACE_ENV, "0") not in ("", "0")


def default_trace_path() -> str:
    """Where auto-emitted traces go (``REPRO_TRACE_FILE`` or trace.json)."""
    return os.environ.get(TRACE_FILE_ENV) or "trace.json"


_ACTIVE = threading.local()


def current_tracer() -> Optional["Tracer"]:
    """The tracer activated on this thread, or ``None``.

    This is the hook the deterministic core polls: one thread-local read
    when tracing is off, so the disabled path is free.
    """
    return getattr(_ACTIVE, "tracer", None)


@dataclass(frozen=True)
class PhaseSpan:
    """One wall-clock phase (seconds relative to the tracer's origin)."""

    name: str
    begin: float
    end: float
    depth: int

    @property
    def seconds(self) -> float:
        return self.end - self.begin


@dataclass(frozen=True)
class TransferRecord:
    """One deduplicated (producer op, destination node) message.

    All times are simulated seconds.  ``release`` is the producer's finish
    time; the message then spends ``handshake`` seconds in the rendezvous
    protocol (0 when eager / uniform), waits for the sender's NIC until
    ``inject_start``, occupies the NIC for ``injection`` seconds, and
    arrives at the receiver ``wire`` seconds after injection starts.
    """

    op_id: int
    src: int
    dst: int
    n_bytes: int
    release: float
    handshake: float
    inject_start: float
    injection: float
    wire: float
    arrival: float

    @property
    def queued(self) -> float:
        """Seconds spent waiting for the sender's NIC after the handshake."""
        return self.inject_start - (self.release + self.handshake)


@dataclass
class EngineRun:
    """The execution record of one engine replay (simulated time).

    Column-oriented — the arrays are shared with (not copied from) the
    Schedule the engine returns, so recording a run is O(1) plus the
    transfer list.
    """

    label: str
    policy: str
    network: str
    n_nodes: int
    cores_per_node: int
    makespan: float
    kernel_codes: Any  #: np.ndarray of per-op kernel codes
    levels: Any  #: np.ndarray of per-op topological levels
    start: Sequence[float]
    finish: Sequence[float]
    node_of: Sequence[int]
    core_of: Sequence[int]
    ready_time: Sequence[float]
    _transfers: Optional[List[TransferRecord]] = field(default=None, repr=False)
    _transfers_source: Optional[Callable[[], List[TransferRecord]]] = field(
        default=None, repr=False
    )

    @property
    def transfers(self) -> List[TransferRecord]:
        """Per-message transfer records of this run.

        Reconstructed lazily on first read (and cached): the engine hands
        the tracer a zero-argument closure over its post-loop dedup state,
        so a traced replay pays nothing per message until an exporter or
        metrics reader actually asks for the transfer timeline.
        """
        if self._transfers is None:
            source = self._transfers_source
            self._transfers = list(source()) if source is not None else []
        return self._transfers

    def __len__(self) -> int:
        return len(self.start)

    def kernel_names(self) -> List[str]:
        """Per-op kernel names (decoded from the packed code column)."""
        from repro.kernels.costs import KERNEL_LIST

        names = [k.value for k in KERNEL_LIST]
        return [names[code] for code in self.kernel_codes.tolist()]


class Tracer:
    """Collects phase spans and engine runs; exports Chrome traces / Gantts.

    Parameters
    ----------
    clock:
        Wall-clock source for the phase spans (default
        :class:`~repro.obs.clock.WallClock`); tests inject a
        :class:`~repro.obs.clock.FakeClock` for bit-reproducible traces.
    """

    def __init__(self, clock: Optional[Any] = None) -> None:
        if clock is None:
            from repro.obs.clock import WallClock

            clock = WallClock()
        self.clock = clock
        self._origin = clock.now()
        self.phases: List[PhaseSpan] = []
        self._phase_stack: List[Tuple[str, float]] = []
        self.runs: List[EngineRun] = []
        self.meta: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # Wall-clock phase spans
    # ------------------------------------------------------------------ #
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Record one wall-clock span (nested spans are supported)."""
        begin = self.clock.now() - self._origin
        self._phase_stack.append((name, begin))
        try:
            yield
        finally:
            depth = len(self._phase_stack) - 1
            self._phase_stack.pop()
            end = self.clock.now() - self._origin
            self.phases.append(PhaseSpan(name, begin, end, depth))

    def phase_seconds(self) -> Dict[str, float]:
        """Total wall seconds per phase name (over all recorded spans)."""
        out: Dict[str, float] = {}
        for span in self.phases:
            out[span.name] = out.get(span.name, 0.0) + span.seconds
        return out

    # ------------------------------------------------------------------ #
    # Ambient activation
    # ------------------------------------------------------------------ #
    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Make this tracer ambient for the current thread.

        The IR compiler and the simulation engine poll
        :func:`current_tracer`; activation is what connects them to this
        instance without threading a parameter through every layer.
        Activation is per-thread: worker threads of a tuning pool do not
        inherit it.
        """
        previous = current_tracer()
        _ACTIVE.tracer = self
        try:
            yield self
        finally:
            _ACTIVE.tracer = previous

    # ------------------------------------------------------------------ #
    # Engine runs (simulated time)
    # ------------------------------------------------------------------ #
    def record_engine_run(
        self,
        *,
        program: Any,
        policy: str,
        network: str,
        n_nodes: int,
        cores_per_node: int,
        makespan: float,
        start: Sequence[float],
        finish: Sequence[float],
        node_of: Sequence[int],
        core_of: Sequence[int],
        ready_time: Sequence[float],
        transfers: Union[
            List[TransferRecord], Callable[[], List[TransferRecord]], None
        ] = None,
        label: str = "",
    ) -> EngineRun:
        """Attach one replay's execution record (called by the engine).

        ``transfers`` may be an explicit record list or a zero-argument
        callable producing one; a callable defers the per-message
        reconstruction until :attr:`EngineRun.transfers` is first read,
        keeping the traced replay itself O(1) next to the schedule build.
        """
        if callable(transfers):
            eager, source = None, transfers
        else:
            eager, source = list(transfers or ()), None
        run = EngineRun(
            label=label or f"run{len(self.runs)}",
            policy=policy,
            network=network,
            n_nodes=n_nodes,
            cores_per_node=cores_per_node,
            makespan=makespan,
            kernel_codes=program.kernel_codes_np,
            levels=program.levels_np,
            start=start,
            finish=finish,
            node_of=node_of,
            core_of=core_of,
            ready_time=ready_time,
            _transfers=eager,
            _transfers_source=source,
        )
        self.runs.append(run)
        return run

    # ------------------------------------------------------------------ #
    # Export front doors (implementation in repro.obs.export)
    # ------------------------------------------------------------------ #
    def to_chrome_trace(self) -> Dict[str, Any]:
        """The trace as a Chrome/Perfetto trace-event JSON object."""
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def write(self, path: str) -> str:
        """Write the Chrome trace JSON to ``path``; returns the path."""
        from repro.obs.export import write_chrome_trace

        return write_chrome_trace(self, path)

    def gantt(self, **kwargs: Any) -> str:
        """Text Gantt chart of the most recent engine run."""
        from repro.obs.export import gantt_text

        if not self.runs:
            return "(no engine run recorded)"
        return gantt_text(self.runs[-1], **kwargs)

    def gantt_svg(self, **kwargs: Any) -> str:
        """SVG Gantt timeline of the most recent engine run."""
        from repro.obs.export import gantt_svg

        if not self.runs:
            raise ValueError("no engine run recorded")
        return gantt_svg(self.runs[-1], **kwargs)
