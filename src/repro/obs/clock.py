"""Injectable clocks for the observability layer.

The tracer and the profiling hooks measure *wall-clock* phase durations
(compile, dependency analysis, rank, simulate) — but the deterministic
core under :mod:`repro.runtime` is forbidden from reading the wall clock
(the ``DTM003`` lint rule): simulated time must come from the machine
model only.  The resolution is ownership: the engine never reads a clock;
it calls into a :class:`~repro.obs.tracer.Tracer`, and the tracer owns a
:class:`Clock` behind this injectable interface.  Production code uses
:class:`WallClock` (``time.perf_counter``); tests inject a
:class:`FakeClock` so even the wall-clock phase spans of a trace are
bit-reproducible and can be golden-pinned.
"""

from __future__ import annotations

import time


class Clock:
    """Monotonic-seconds source consumed by tracer and profiler."""

    def now(self) -> float:
        """Current time in seconds (monotonic within one process)."""
        raise NotImplementedError


class WallClock(Clock):
    """The real wall clock (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


class FakeClock(Clock):
    """Deterministic clock for tests: advances ``step`` seconds per read.

    With a fake clock every phase span of a trace has an exactly
    reproducible duration, so whole trace-event files can be compared
    against golden copies.
    """

    def __init__(self, start: float = 0.0, step: float = 0.5) -> None:
        self._t = float(start)
        self.step = float(step)

    def now(self) -> float:
        t = self._t
        self._t += self.step
        return t

    def advance(self, seconds: float) -> None:
        """Move the clock forward without consuming a tick."""
        self._t += float(seconds)
