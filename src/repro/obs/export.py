"""Trace exporters: Chrome/Perfetto trace-event JSON and Gantt timelines.

The Chrome trace-event format (the JSON flavour Perfetto's legacy importer
and ``chrome://tracing`` both load) maps cleanly onto a simulated run:

========================  ==================================================
trace-event concept       simulation concept
========================  ==================================================
process (``pid``)         machine node (pid ``node + 1``; pid 0 is the
                          *host* process carrying wall-clock phase spans)
thread (``tid``)          core of the node (tid ``core + 1``); one extra
                          lane per node (tid ``cores_per_node + 1``) shows
                          the NIC's injection occupancy
complete event (``X``)    one task (name = kernel) or one message on the
                          NIC lane; ``ts`` / ``dur`` are simulated seconds
                          scaled to microseconds
duration events (B/E)     wall-clock phases (compile, dep-analysis, rank,
                          simulate) on the host process
counter event (``C``)     ready-queue depth over simulated time
metadata (``M``)          process/thread naming for the UI
========================  ==================================================

Wall-clock and simulated timelines coexist in one file because they live
on different processes; both start at zero so the phases sit alongside
the run they produced.

:func:`validate_chrome_trace` is the schema check the tests and the CI
smoke job run over emitted files: timestamps numeric and monotonic,
every ``B`` matched by an ``E`` on the same lane, non-negative ``X``
durations, integral pids/tids.

The Gantt renderers (:func:`gantt_text`, :func:`gantt_svg`) draw the same
run directly from the :class:`~repro.obs.tracer.EngineRun` record — one
lane per core plus a NIC lane per node — reusing the kernel glyph table
the legacy ASCII chart established and the shared busy-fraction helpers
of :mod:`repro.obs.util`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.util import core_busy_seconds

#: One-character glyph per kernel, shared with the legacy ASCII Gantt
#: chart of :mod:`repro.runtime.trace` (which imports it from here).
KERNEL_GLYPHS: Dict[str, str] = {
    "GEQRT": "Q",
    "TSQRT": "S",
    "TTQRT": "T",
    "UNMQR": "u",
    "TSMQR": "s",
    "TTMQR": "t",
    "GELQT": "L",
    "TSLQT": "Z",
    "TTLQT": "Y",
    "UNMLQ": "l",
    "TSMLQ": "z",
    "TTMLQ": "y",
}

_US = 1e6  # simulated / wall seconds -> trace-event microseconds
#: Ready-queue counter samples are capped so a million-op trace does not
#: drown the viewer in counter events.
_MAX_COUNTER_SAMPLES = 1000


# --------------------------------------------------------------------------- #
# Chrome / Perfetto trace-event JSON
# --------------------------------------------------------------------------- #
def _host_events(tracer: Any) -> List[Dict[str, Any]]:
    """Wall-clock phase spans as B/E pairs on the host process (pid 0)."""
    events: List[Dict[str, Any]] = []
    for span in tracer.phases:
        common = {"pid": 0, "tid": 1, "cat": "phase", "name": span.name}
        events.append({**common, "ph": "B", "ts": span.begin * _US})
        events.append({**common, "ph": "E", "ts": span.end * _US})
    return events


def _ready_depth_samples(run: Any) -> List[Tuple[float, int]]:
    """(time, ready-queue depth) step samples of one run, downsampled."""
    import numpy as np

    n = len(run)
    if n == 0:
        return []
    ready = np.asarray(run.ready_time, dtype=np.float64)
    start = np.asarray(run.start, dtype=np.float64)
    times = np.concatenate([ready, start])
    deltas = np.concatenate(
        [np.ones(n, dtype=np.int64), -np.ones(n, dtype=np.int64)]
    )
    order = np.lexsort((-deltas, times))  # +1 before -1 at equal timestamps
    times, deltas = times[order], deltas[order]
    depth = np.cumsum(deltas)
    # Collapse equal-timestamp runs to their final depth, then downsample.
    keep = np.ones(len(times), dtype=bool)
    keep[:-1] = times[1:] != times[:-1]
    times, depth = times[keep], depth[keep]
    if len(times) > _MAX_COUNTER_SAMPLES:
        idx = np.linspace(0, len(times) - 1, _MAX_COUNTER_SAMPLES).astype(np.int64)
        times, depth = times[idx], depth[idx]
    return list(zip(times.tolist(), depth.tolist()))


def _run_events(run: Any, run_index: int, n_runs: int) -> List[Dict[str, Any]]:
    """Task / transfer / counter / metadata events of one engine run."""
    events: List[Dict[str, Any]] = []
    pid_base = 1 + run_index * run.n_nodes
    nic_tid = run.cores_per_node + 1
    prefix = f"{run.label}/" if n_runs > 1 else ""

    for node in range(run.n_nodes):
        pid = pid_base + node
        events.append(
            {
                "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                "args": {"name": f"{prefix}node{node}"},
            }
        )
        for core in range(run.cores_per_node):
            events.append(
                {
                    "ph": "M", "pid": pid, "tid": core + 1,
                    "name": "thread_name", "args": {"name": f"core{core}"},
                }
            )
        events.append(
            {
                "ph": "M", "pid": pid, "tid": nic_tid,
                "name": "thread_name", "args": {"name": "nic"},
            }
        )

    names = run.kernel_names()
    levels = run.levels.tolist()
    start, finish = run.start, run.finish
    node_of, core_of = run.node_of, run.core_of
    for op_id in range(len(run)):
        t0 = start[op_id]
        events.append(
            {
                "ph": "X",
                "pid": pid_base + node_of[op_id],
                "tid": core_of[op_id] + 1,
                "cat": "task",
                "name": names[op_id],
                "ts": t0 * _US,
                "dur": (finish[op_id] - t0) * _US,
                "args": {"op": op_id, "level": levels[op_id]},
            }
        )

    for record in run.transfers:
        events.append(
            {
                "ph": "X",
                "pid": pid_base + record.src,
                "tid": nic_tid,
                "cat": "transfer",
                "name": f"msg to node{record.dst}",
                "ts": record.inject_start * _US,
                "dur": record.injection * _US,
                "args": {
                    "op": record.op_id,
                    "dst": record.dst,
                    "bytes": record.n_bytes,
                    "release_us": record.release * _US,
                    "handshake_us": record.handshake * _US,
                    "queued_us": record.queued * _US,
                    "wire_us": record.wire * _US,
                    "arrival_us": record.arrival * _US,
                },
            }
        )

    for t, depth in _ready_depth_samples(run):
        events.append(
            {
                "ph": "C",
                "pid": pid_base,
                "tid": 0,
                "cat": "engine",
                "name": f"{prefix}ready_depth",
                "ts": t * _US,
                "args": {"ready": depth},
            }
        )
    return events


def chrome_trace(tracer: Any) -> Dict[str, Any]:
    """Render a tracer's phases + runs as a trace-event JSON object.

    Metadata events lead (no timestamps); every timed event follows in
    globally non-decreasing ``ts`` order, ties kept in emission order so
    B/E nesting survives the sort.
    """
    timed: List[Dict[str, Any]] = []
    meta: List[Dict[str, Any]] = []
    if tracer.phases:
        meta.append(
            {
                "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
                "args": {"name": "host (wall clock)"},
            }
        )
        meta.append(
            {
                "ph": "M", "pid": 0, "tid": 1, "name": "thread_name",
                "args": {"name": "phases"},
            }
        )
        timed.extend(_host_events(tracer))
    n_runs = len(tracer.runs)
    for index, run in enumerate(tracer.runs):
        for event in _run_events(run, index, n_runs):
            (meta if event["ph"] == "M" else timed).append(event)
    timed.sort(key=lambda e: e["ts"])  # stable: emission order breaks ties
    payload: Dict[str, Any] = {
        "traceEvents": meta + timed,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "runs": [
                {
                    "label": run.label,
                    "policy": run.policy,
                    "network": run.network,
                    "ops": len(run),
                    "makespan_s": run.makespan,
                }
                for run in tracer.runs
            ],
            **tracer.meta,
        },
    }
    return payload


def write_chrome_trace(tracer: Any, path: str) -> str:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer), fh, separators=(",", ":"))
        fh.write("\n")
    return path


def validate_chrome_trace(payload: Any) -> List[str]:
    """Schema-check a trace-event object; returns a list of problems.

    An empty list means the payload is loadable: ``traceEvents`` present,
    numeric non-negative timestamps in globally non-decreasing order,
    every ``B`` closed by a matching ``E`` on its (pid, tid) lane,
    non-negative ``X`` durations, integral pids/tids.
    """
    problems: List[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["payload is not an object with a traceEvents list"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    last_ts: Optional[float] = None
    open_spans: Dict[Tuple[int, int], List[str]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            problems.append(f"event {i}: not an object with a 'ph' field")
            continue
        ph = event["ph"]
        pid, tid = event.get("pid"), event.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            problems.append(f"event {i}: pid/tid must be integers")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {i}: ts {ts} goes backwards (previous {last_ts})"
            )
        last_ts = ts
        if ph == "B":
            open_spans.setdefault((pid, tid), []).append(event.get("name", ""))
        elif ph == "E":
            stack = open_spans.get((pid, tid))
            if not stack:
                problems.append(f"event {i}: E without open B on lane {(pid, tid)}")
            else:
                begun = stack.pop()
                name = event.get("name", begun)
                if name != begun:
                    problems.append(
                        f"event {i}: E name {name!r} closes B name {begun!r}"
                    )
        elif ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: X with bad dur {dur!r}")
    for lane, stack in sorted(open_spans.items()):
        if stack:
            problems.append(f"lane {lane}: unclosed B span(s) {stack}")
    return problems


# --------------------------------------------------------------------------- #
# Gantt timelines (text + SVG) straight from an EngineRun
# --------------------------------------------------------------------------- #
def _lane_intervals(
    run: Any,
) -> Dict[Tuple[int, int], List[Tuple[float, float, str]]]:
    """(node, core) -> sorted [(start, finish, kernel name)] of one run."""
    names = run.kernel_names()
    lanes: Dict[Tuple[int, int], List[Tuple[float, float, str]]] = {}
    for op_id in range(len(run)):
        key = (run.node_of[op_id], run.core_of[op_id])
        lanes.setdefault(key, []).append(
            (run.start[op_id], run.finish[op_id], names[op_id])
        )
    for intervals in lanes.values():
        intervals.sort()
    return lanes


def _lane_busy_fractions(run: Any) -> Any:
    """(n_nodes, cores) busy fractions via the shared obs.util helper."""
    per_core = core_busy_seconds(
        run.start, run.finish, run.node_of, run.core_of,
        run.n_nodes, run.cores_per_node,
    )
    return per_core / run.makespan if run.makespan > 0 else per_core


def gantt_text(
    run: Any,
    *,
    width: int = 100,
    max_lanes: Optional[int] = 32,
) -> str:
    """ASCII Gantt chart of one engine run, one lane per core plus NIC rows.

    Each column spans ``makespan / width`` simulated seconds; a cell shows
    the kernel glyph that occupied the majority of the slice (``.`` =
    idle).  NIC rows (``~`` = injecting) appear under each node that sent
    messages.  Every lane ends with its busy fraction from the shared
    utilization helper.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if run.makespan <= 0 or len(run) == 0:
        return "(empty schedule)"
    makespan = run.makespan
    dt = makespan / width
    lanes = _lane_intervals(run)
    busy_frac = _lane_busy_fractions(run)

    nic_rows: Dict[int, List[Tuple[float, float]]] = {}
    for record in run.transfers:
        nic_rows.setdefault(record.src, []).append(
            (record.inject_start, record.inject_start + record.injection)
        )

    lines: List[str] = [
        f"{run.label}: policy={run.policy} network={run.network} "
        f"makespan={makespan:.4g}s  ({width} columns, '.' = idle)",
        "legend: "
        + "  ".join(f"{g}={n}" for n, g in sorted(KERNEL_GLYPHS.items()))
        + "  ~=NIC injecting",
    ]
    shown = 0
    for key in sorted(lanes):
        if max_lanes is not None and shown >= max_lanes:
            lines.append(f"... ({len(lanes) - shown} more core lanes not shown)")
            break
        node, core = key
        intervals = lanes[key]
        row = []
        for col in range(width):
            t0, t1 = col * dt, (col + 1) * dt
            best_kernel, best_overlap = None, 0.0
            for s, f, kernel in intervals:
                overlap = min(f, t1) - max(s, t0)
                if overlap > best_overlap:
                    best_overlap = overlap
                    best_kernel = kernel
            row.append(KERNEL_GLYPHS.get(best_kernel, "#") if best_kernel else ".")
        frac = float(busy_frac[node][core])
        lines.append(f"n{node:02d}c{core:02d} |" + "".join(row) + f"| {frac:5.1%}")
        shown += 1
        if core == run.cores_per_node - 1 and node in nic_rows:
            row = []
            for col in range(width):
                t0, t1 = col * dt, (col + 1) * dt
                hit = any(
                    min(f, t1) - max(s, t0) > 0 for s, f in nic_rows[node]
                )
                row.append("~" if hit else ".")
            lines.append(f"n{node:02d} nic|" + "".join(row) + "|")
    return "\n".join(lines)


def _kernel_color(name: str) -> str:
    """Deterministic per-kernel color (golden-angle hue walk)."""
    index = sorted(KERNEL_GLYPHS).index(name) if name in KERNEL_GLYPHS else 12
    hue = (index * 137) % 360
    return f"hsl({hue},65%,55%)"


def gantt_svg(
    run: Any,
    *,
    width_px: int = 1200,
    lane_px: int = 14,
    max_lanes: Optional[int] = 64,
) -> str:
    """SVG Gantt timeline of one engine run (tasks + NIC injections).

    One horizontal band per core (``max_lanes`` caps the band count for
    very large machines), colored by kernel, with the NIC injection
    windows as grey bands under each node.  Self-contained SVG — no
    external CSS or scripts — so it opens in any browser.
    """
    if run.makespan <= 0 or len(run) == 0:
        return '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>'
    makespan = run.makespan
    scale = width_px / makespan
    label_px = 70
    lanes = _lane_intervals(run)
    lane_keys = sorted(lanes)
    truncated = 0
    if max_lanes is not None and len(lane_keys) > max_lanes:
        truncated = len(lane_keys) - max_lanes
        lane_keys = lane_keys[:max_lanes]

    nic_rows: Dict[int, List[Any]] = {}
    for record in run.transfers:
        if record.src in {node for node, _ in lane_keys}:
            nic_rows.setdefault(record.src, []).append(record)

    rows: List[Tuple[str, Any]] = [(f"n{n:02d}c{c:02d}", (n, c)) for n, c in lane_keys]
    nodes_shown = []
    for node, _ in lane_keys:
        if node not in nodes_shown:
            nodes_shown.append(node)
    for node in nodes_shown:
        if node in nic_rows:
            rows.append((f"n{node:02d} nic", ("nic", node)))

    height = (len(rows) + 2) * lane_px + 20
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{label_px + width_px + 10}" height="{height}" '
        f'font-family="monospace" font-size="{lane_px - 4}px">',
        f'<text x="2" y="{lane_px - 2}">{run.label}: policy={run.policy} '
        f"network={run.network} makespan={makespan:.4g}s"
        + (f" ({truncated} lanes hidden)" if truncated else "")
        + "</text>",
    ]
    y = lane_px + 4
    for label, key in rows:
        parts.append(
            f'<text x="2" y="{y + lane_px - 3}" fill="#333">{label}</text>'
        )
        parts.append(
            f'<rect x="{label_px}" y="{y}" width="{width_px}" '
            f'height="{lane_px - 1}" fill="#f2f2f2"/>'
        )
        if key[0] == "nic":
            for record in nic_rows.get(key[1], ()):
                x = label_px + record.inject_start * scale
                w = max(record.injection * scale, 0.5)
                parts.append(
                    f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
                    f'height="{lane_px - 1}" fill="#888">'
                    f"<title>op {record.op_id} to node{record.dst} "
                    f"({record.n_bytes} B)</title></rect>"
                )
        else:
            for s, f, kernel in lanes[key]:
                x = label_px + s * scale
                w = max((f - s) * scale, 0.5)
                parts.append(
                    f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
                    f'height="{lane_px - 1}" fill="{_kernel_color(kernel)}">'
                    f"<title>{kernel} [{s:.4g}s, {f:.4g}s]</title></rect>"
                )
        y += lane_px
    legend_y = y + lane_px - 3
    x = label_px
    for name in sorted(KERNEL_GLYPHS):
        parts.append(
            f'<rect x="{x}" y="{legend_y - lane_px + 4}" width="10" '
            f'height="10" fill="{_kernel_color(name)}"/>'
        )
        parts.append(f'<text x="{x + 12}" y="{legend_y}">{name}</text>')
        x += 12 + 6 * len(name) + 14
    parts.append("</svg>")
    return "\n".join(parts)
