"""Shared utilization / idle-time helpers over executed schedules.

Per-node and per-core busy/idle accounting used to be re-derived ad hoc
wherever it was needed — :meth:`repro.runtime.scheduler.Schedule.
node_utilization`, the trace tooling of :mod:`repro.runtime.trace`, the
benchmarks.  This module is the single implementation all of them (plus
the metrics registry and the Gantt exporters) now share.

Everything is duck-typed over the ``Schedule`` record (``makespan``,
``busy_time_per_node``, ``start`` / ``finish`` / ``node_of_task`` /
``core_of_task``) and the ``Machine`` (``cores_per_node``), so the module
imports nothing from :mod:`repro.runtime` and can sit below it in the
layering.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np


def node_busy_fractions(
    busy_time_per_node: Sequence[float],
    makespan: float,
    cores_per_node: int,
) -> List[float]:
    """Fraction of available core-seconds each node spent computing.

    The canonical form of the legacy ``Schedule.node_utilization``: a zero
    (or negative) makespan yields all-zero fractions rather than a
    division error.
    """
    if makespan <= 0:
        return [0.0 for _ in busy_time_per_node]
    capacity = cores_per_node * makespan
    return [busy / capacity for busy in busy_time_per_node]


def idle_seconds_per_node(
    busy_time_per_node: Sequence[float],
    makespan: float,
    cores_per_node: int,
) -> List[float]:
    """Idle core-seconds of each node over the makespan."""
    return [cores_per_node * makespan - busy for busy in busy_time_per_node]


def core_busy_seconds(
    start: Sequence[float],
    finish: Sequence[float],
    node_of_task: Sequence[int],
    core_of_task: Sequence[int],
    n_nodes: int,
    cores_per_node: int,
) -> np.ndarray:
    """Busy seconds of every core, as an ``(n_nodes, cores_per_node)`` array.

    One vectorized ``bincount`` over the schedule rows — no per-task
    Python loop, so attaching per-core metrics to a million-op run stays
    cheap.
    """
    if not len(start):
        return np.zeros((n_nodes, cores_per_node), dtype=np.float64)
    durations = np.asarray(finish, dtype=np.float64) - np.asarray(
        start, dtype=np.float64
    )
    lane = (
        np.asarray(node_of_task, dtype=np.int64) * cores_per_node
        + np.asarray(core_of_task, dtype=np.int64)
    )
    flat = np.bincount(lane, weights=durations, minlength=n_nodes * cores_per_node)
    return flat.reshape(n_nodes, cores_per_node)


def utilization_summary(schedule: Any, machine: Any) -> Dict[str, Any]:
    """Busy/idle breakdown of one executed schedule (JSON-serializable).

    Used by the metrics registry (``RunResult.metrics["utilization"]``),
    the Gantt exporters (per-lane busy fractions) and the analysis layer.
    Per-core figures require the engine's core assignment
    (``schedule.core_of_task``); hand-built schedules without one get the
    per-node view only.
    """
    makespan = float(schedule.makespan)
    busy_per_node = list(schedule.busy_time_per_node)
    n_nodes = len(busy_per_node)
    cores = int(machine.cores_per_node)
    total_busy = float(sum(busy_per_node))
    capacity = n_nodes * cores * makespan
    out: Dict[str, Any] = {
        "makespan": makespan,
        "busy_fraction_per_node": node_busy_fractions(busy_per_node, makespan, cores),
        "idle_seconds_per_node": idle_seconds_per_node(busy_per_node, makespan, cores),
        "overall_busy_fraction": total_busy / capacity if capacity > 0 else 0.0,
        "total_idle_seconds": max(capacity - total_busy, 0.0),
    }
    core_of: Optional[Sequence[int]] = schedule.core_of_task
    if core_of is not None and makespan > 0:
        per_core = core_busy_seconds(
            schedule.start,
            schedule.finish,
            schedule.node_of_task,
            core_of,
            n_nodes,
            cores,
        )
        out["busy_seconds_per_core"] = [
            [float(x) for x in row] for row in per_core
        ]
        out["busy_fraction_per_core"] = [
            [float(x) / makespan for x in row] for row in per_core
        ]
    return out
