"""Span-timer profiling hooks (``REPRO_PROFILE=1``).

Lightweight named wall-clock timers for call sites that want per-request
timings without a full trace: the API front door, tuning sweeps, the
future service layer.  The contract is near-zero overhead when disabled —
:func:`profiled` checks one module-level flag and yields immediately, no
clock read, no lock — so the hooks can sit permanently on hot entry
points.

Enable with ``REPRO_PROFILE=1`` (read once at first use; call
:func:`reset_profiles` with ``reread_env=True`` after changing the
environment mid-process, as tests do).  Read the accumulated
``{name: {count, total_s, min_s, max_s}}`` with :func:`profile_snapshot`.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

#: Environment variable turning the span timers on.
PROFILE_ENV = "REPRO_PROFILE"

_LOCK = threading.Lock()
#: name -> [count, total seconds, min seconds, max seconds]
_SPANS: Dict[str, list] = {}
_enabled: Optional[bool] = None  # resolved lazily from the environment


def profile_enabled() -> bool:
    """True when ``REPRO_PROFILE`` is set (cached after the first read)."""
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get(PROFILE_ENV, "0") not in ("", "0")
    return _enabled


@contextmanager
def profiled(name: str) -> Iterator[None]:
    """Time the enclosed block under ``name`` when profiling is enabled.

    Disabled path: one cached boolean test, then a bare yield.
    """
    if not profile_enabled():
        yield
        return
    begin = time.perf_counter()
    try:
        yield
    finally:
        seconds = time.perf_counter() - begin
        with _LOCK:
            span = _SPANS.get(name)
            if span is None:
                _SPANS[name] = [1, seconds, seconds, seconds]
            else:
                span[0] += 1
                span[1] += seconds
                if seconds < span[2]:
                    span[2] = seconds
                if seconds > span[3]:
                    span[3] = seconds


def profile_snapshot() -> Dict[str, Dict[str, Any]]:
    """Accumulated span statistics, keyed by span name (JSON-ready)."""
    with _LOCK:
        return {
            name: {
                "count": span[0],
                "total_s": span[1],
                "min_s": span[2],
                "max_s": span[3],
            }
            for name, span in sorted(_SPANS.items())
        }


def reset_profiles(*, reread_env: bool = False) -> None:
    """Drop all accumulated spans; optionally re-read ``REPRO_PROFILE``."""
    global _enabled
    with _LOCK:
        _SPANS.clear()
    if reread_env:
        _enabled = None
