"""Stdlib-only metrics registry: counters, gauges and histograms.

The simulator stack accumulates a number of process-global statistics —
program-cache and plan-cache hits, the engine's memo-table traffic — that
used to live as ad-hoc attributes scattered over the producing modules,
with no way to ask "what did *this* run cost?" without manual
bookkeeping.  This module centralizes them:

* :class:`MetricsRegistry` holds named counters, gauges and power-of-two
  histograms behind one lock, with :meth:`~MetricsRegistry.snapshot` /
  :meth:`~MetricsRegistry.delta_since` so a caller can bracket any stretch
  of work and read off exactly what happened inside it, and
  :meth:`~MetricsRegistry.reset` (optionally by name prefix) so tests and
  per-run accounting do not inherit counts from unrelated runs;
* :data:`REGISTRY` is the process-wide default instance every layer
  reports into (``program_cache.*``, ``plan_cache.*``, ``engine.memo.*``);
* :func:`run_metrics` assembles the per-run snapshot that
  :class:`~repro.api.result.RunResult` carries: cache hit/miss deltas,
  per-node / per-core utilization derived from the Schedule (through the
  shared helpers of :mod:`repro.obs.util`), communication totals, and —
  when a trace was recorded — message-size histograms per network model
  and ready-queue depth statistics.

Everything here is standard library + numpy; importing this module pulls
in nothing from :mod:`repro.runtime`, so the producer layers can report
into the registry without import cycles.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.util import utilization_summary


class Histogram:
    """Power-of-two bucketed histogram of non-negative values.

    Values are bucketed by ``int(value).bit_length()`` — bucket ``2**k``
    counts observations in ``(2**(k-1), 2**k]`` — which is exact, fast and
    deterministic for the byte counts and depths this package records.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histograms record non-negative values, got {value}")
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count if self.count else None,
            # Keyed by the bucket's inclusive upper bound, ascending.
            "buckets": {
                str(2 ** k if k else 0): n
                for k, n in sorted(self.buckets.items())
            },
        }


class MetricsRegistry:
    """Thread-safe named counters / gauges / histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time copy of every metric (JSON-serializable)."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: hist.to_dict()
                    for name, hist in sorted(self._histograms.items())
                },
            }

    def delta_since(self, before: Mapping[str, Any]) -> Dict[str, float]:
        """Counter increments since a previous :meth:`snapshot`.

        Only counters are diffed (gauges are instantaneous, histograms are
        cumulative distributions); counters untouched in between are
        omitted, so the delta of an idle stretch is ``{}``.
        """
        prior = before.get("counters", {})
        out: Dict[str, float] = {}
        with self._lock:
            for name, value in sorted(self._counters.items()):
                diff = value - prior.get(name, 0)
                if diff:
                    out[name] = diff
        return out

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero every metric, or only those whose name starts with ``prefix``."""
        with self._lock:
            if prefix is None:
                self._counters.clear()
                self._gauges.clear()
                self._histograms.clear()
                return
            for store in (self._counters, self._gauges, self._histograms):
                for name in [n for n in store if n.startswith(prefix)]:
                    del store[name]


#: The process-wide registry every layer reports into: ``program_cache.*``
#: (:class:`repro.ir.compiler.ProgramCache`), ``plan_cache.*``
#: (:class:`repro.tuning.cache.PlanCache`) and ``engine.memo.*``
#: (:mod:`repro.runtime.engine`'s per-program memo tables).
REGISTRY = MetricsRegistry()


# --------------------------------------------------------------------------- #
# Per-run snapshot assembly
# --------------------------------------------------------------------------- #
def _ready_queue_stats(run: Any) -> Dict[str, Any]:
    """Ready-queue depth statistics of one recorded engine run.

    An op is *ready* from the instant its last dependency arrival passes
    (``ready_time``) until the engine dispatches it (``start``); both
    arrays fall out of the event loop, so depth-over-time needs no in-loop
    sampling.  Returns the peak depth, the time-weighted mean depth and
    the number of ops that ever waited.
    """
    import numpy as np

    ready = np.asarray(run.ready_time, dtype=np.float64)
    start = np.asarray(run.start, dtype=np.float64)
    waited = start > ready
    if not len(ready):
        return {"peak": 0, "time_weighted_mean": 0.0, "ops_that_waited": 0}
    times = np.concatenate([ready, start])
    deltas = np.concatenate(
        [np.ones(len(ready), dtype=np.int64), -np.ones(len(start), dtype=np.int64)]
    )
    order = np.lexsort((-deltas, times))  # +1 before -1 at equal timestamps
    times, deltas = times[order], deltas[order]
    depth = np.cumsum(deltas)
    peak = int(depth.max(initial=0))
    span = times[-1] - times[0]
    if span > 0:
        widths = np.diff(times)
        mean = float((depth[:-1] * widths).sum() / span)
    else:
        mean = float(peak)
    return {
        "peak": peak,
        "time_weighted_mean": mean,
        "ops_that_waited": int(waited.sum()),
    }


def _message_size_histogram(run: Any) -> Dict[str, Any]:
    """Histogram of per-message payload sizes of one recorded run."""
    hist = Histogram()
    for record in run.transfers:
        hist.observe(record.n_bytes)
    return hist.to_dict()


def run_metrics(
    schedule: Any,
    machine: Any,
    *,
    counters_delta: Optional[Mapping[str, float]] = None,
    tracer: Optional[Any] = None,
) -> Dict[str, Any]:
    """Assemble the per-run metrics snapshot attached to ``RunResult``.

    ``schedule`` / ``machine`` are duck-typed (a
    :class:`~repro.runtime.scheduler.Schedule` and a
    :class:`~repro.runtime.machine.Machine`) so this module stays free of
    runtime imports.  ``counters_delta`` is the registry increment
    bracketing the run (cache hits/misses, memo traffic);  ``tracer``
    contributes the trace-only extras (ready-queue depth, message sizes).
    """
    comm: Dict[str, Any] = {
        "messages": schedule.messages,
        "bytes": schedule.comm_bytes,
        "send_seconds": schedule.comm_seconds,
    }
    if schedule.messages_per_node is not None:
        comm["messages_per_node"] = list(schedule.messages_per_node)
    if schedule.comm_time_per_node is not None:
        comm["send_seconds_per_node"] = [float(x) for x in schedule.comm_time_per_node]
    out: Dict[str, Any] = {
        "utilization": utilization_summary(schedule, machine),
        "communication": comm,
        "cache": dict(counters_delta) if counters_delta else {},
    }
    runs: List[Any] = list(getattr(tracer, "runs", ()) or ())
    if runs:
        run = runs[-1]
        out["ready_queue"] = _ready_queue_stats(run)
        out["message_sizes"] = _message_size_histogram(run)
        out["network"] = run.network
        out["policy"] = run.policy
    return out
