"""Compile algorithm drivers into Programs, once per DAG shape.

``compile_program`` drives a :class:`~repro.ir.recorder.ProgramRecorder`
through one of the tiled algorithm drivers and finalizes the op stream
into a :class:`~repro.ir.program.Program`.  ``get_program`` fronts the
shared in-process :class:`ProgramCache`, keyed by ``(algorithm, p, q,
tree, n_cores, grid_rows)``, so that everything downstream — the numeric
executor, the DAG analyses, the simulation engine, a tuning sweep — traces
each DAG shape exactly once and replays it from then on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import nullcontext
from typing import Dict, Optional, Tuple, Union

from repro.algorithms.bidiag import bidiag_ge2bnd
from repro.algorithms.rbidiag import rbidiag_ge2bnd
from repro.algorithms.tiled_qr import tiled_qr
from repro.ir.program import Program
from repro.ir.recorder import ProgramRecorder
from repro.obs.metrics import REGISTRY
from repro.obs.tracer import current_tracer
from repro.trees.base import ReductionTree

#: Algorithms the compiler can capture.
ALGORITHMS = ("qr", "bidiag", "rbidiag")


def tree_fingerprint(tree: Optional[ReductionTree]) -> str:
    """Stable cache key of a tree instance.

    Walks the instance's attributes (recursing into nested trees, e.g.
    :class:`~repro.trees.hierarchical.HierarchicalTree`'s local tree)
    rather than trusting ``repr``: the :class:`ReductionTree` base repr is
    parameterless, so a parameterized subclass without a custom ``__repr__``
    would otherwise collide in the cache and silently serve another
    configuration's program.
    """
    if tree is None:
        return "none"
    parts = [f"{type(tree).__module__}.{type(tree).__qualname__}"]
    for name, value in sorted(getattr(tree, "__dict__", {}).items()):
        if isinstance(value, ReductionTree):
            value = tree_fingerprint(value)
        parts.append(f"{name}={value!r}")
    return "(" + ", ".join(parts) + ")"


def program_key(
    algorithm: str,
    p: int,
    q: int,
    tree: Optional[ReductionTree],
    *,
    lq_tree: Optional[ReductionTree] = None,
    prequr_tree: Optional[ReductionTree] = None,
    n_cores: int = 1,
    grid_rows: int = 1,
) -> Tuple:
    """The cache key identifying one compiled DAG shape."""
    return (
        algorithm,
        p,
        q,
        tree_fingerprint(tree),
        tree_fingerprint(lq_tree),
        tree_fingerprint(prequr_tree),
        n_cores,
        grid_rows,
    )


def compile_program(
    algorithm: str,
    p: int,
    q: int,
    tree: Optional[ReductionTree],
    *,
    lq_tree: Optional[ReductionTree] = None,
    prequr_tree: Optional[ReductionTree] = None,
    n_cores: int = 1,
    grid_rows: int = 1,
) -> Program:
    """Capture one driver run into a fresh :class:`Program` (no caching).

    Parameters mirror the tracing front-ends of :mod:`repro.dag.tracer`:
    ``algorithm`` is ``"qr"``, ``"bidiag"`` or ``"rbidiag"``; ``lq_tree``
    and ``prequr_tree`` default to ``tree`` inside the drivers.
    """
    algorithm = algorithm.lower()
    tracer = current_tracer()
    with tracer.phase("compile") if tracer is not None else nullcontext():
        recorder = ProgramRecorder(p, q)
        if algorithm == "qr":
            tiled_qr(recorder, tree, n_cores=n_cores, grid_rows=grid_rows)
        elif algorithm == "bidiag":
            bidiag_ge2bnd(
                recorder, tree, lq_tree, n_cores=n_cores, grid_rows=grid_rows
            )
        elif algorithm == "rbidiag":
            rbidiag_ge2bnd(
                recorder,
                tree,
                lq_tree,
                prequr_tree=prequr_tree,
                n_cores=n_cores,
                grid_rows=grid_rows,
            )
        else:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
            )
        return recorder.program(
            key=program_key(
                algorithm,
                p,
                q,
                tree,
                lq_tree=lq_tree,
                prequr_tree=prequr_tree,
                n_cores=n_cores,
                grid_rows=grid_rows,
            )
        )


class ProgramCache:
    """Thread-safe in-process LRU cache of compiled programs.

    Programs are immutable, so a cached instance can safely be shared by
    concurrent consumers; :meth:`Program.to_task_graph` hands out fresh
    graphs for the few call sites that still mutate one.

    Eviction is bounded two ways: ``maxsize`` caps the entry count and
    ``max_ops`` caps the *total op count* across entries — program memory
    grows roughly linearly in ops (~p^2*q ops for a p x q GE2BND), so an
    entry cap alone would let a paper-scale sweep (millions of ops per
    shape) pin tens of gigabytes.  The most recently used program is never
    evicted, so even a program larger than ``max_ops`` on its own is
    served from cache while it is the active shape.
    """

    def __init__(self, maxsize: int = 128, max_ops: int = 4_000_000) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if max_ops < 1:
            raise ValueError(f"max_ops must be >= 1, got {max_ops}")
        self.maxsize = maxsize
        self.max_ops = max_ops
        self._lock = threading.Lock()
        self._programs: "OrderedDict[Tuple, Program]" = OrderedDict()
        self._total_ops = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._programs)

    def _evict_locked(self) -> None:
        """Drop LRU entries until within both bounds (keep the newest)."""
        while len(self._programs) > 1 and (
            len(self._programs) > self.maxsize or self._total_ops > self.max_ops
        ):
            _, evicted = self._programs.popitem(last=False)
            self._total_ops -= len(evicted)

    def clear(self) -> int:
        """Drop every cached program; returns how many were dropped."""
        with self._lock:
            n = len(self._programs)
            self._programs.clear()
            self._total_ops = 0
            self.hits = 0
            self.misses = 0
            return n

    @property
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._programs),
                "total_ops": self._total_ops,
            }

    def get_or_compile(
        self,
        algorithm: str,
        p: int,
        q: int,
        tree: Optional[ReductionTree],
        *,
        lq_tree: Optional[ReductionTree] = None,
        prequr_tree: Optional[ReductionTree] = None,
        n_cores: int = 1,
        grid_rows: int = 1,
    ) -> Program:
        """Return the cached program for this shape, compiling on a miss."""
        key = program_key(
            algorithm.lower(),
            p,
            q,
            tree,
            lq_tree=lq_tree,
            prequr_tree=prequr_tree,
            n_cores=n_cores,
            grid_rows=grid_rows,
        )
        with self._lock:
            program = self._programs.get(key)
            if program is not None:
                self.hits += 1
                self._programs.move_to_end(key)
                REGISTRY.inc("program_cache.hits")
                return program
            self.misses += 1
        REGISTRY.inc("program_cache.misses")
        # Compile outside the lock (tracing a large DAG takes a while);
        # a rare duplicate compilation of the same key is harmless.
        program = compile_program(
            algorithm,
            p,
            q,
            tree,
            lq_tree=lq_tree,
            prequr_tree=prequr_tree,
            n_cores=n_cores,
            grid_rows=grid_rows,
        )
        # Opt-in static verification on insertion (REPRO_VERIFY=1): run the
        # dataflow oracle over the fresh program before anything downstream
        # can consume it.  Outside the lock — the oracle is O(ops + edges).
        from repro.verify.hooks import verify_enabled

        if verify_enabled():
            from repro.verify.hooks import check_program

            check_program(program)
        with self._lock:
            previous = self._programs.pop(key, None)
            if previous is not None:
                self._total_ops -= len(previous)
            self._programs[key] = program
            self._total_ops += len(program)
            self._evict_locked()
        return program


#: The process-wide cache every layer resolves through (the API backends,
#: the simulator drivers, the tuning objectives and the legacy tracing
#: front-ends all share it).
PROGRAM_CACHE = ProgramCache()


def get_program(
    algorithm: str,
    p: int,
    q: int,
    tree: Optional[ReductionTree],
    *,
    lq_tree: Optional[ReductionTree] = None,
    prequr_tree: Optional[ReductionTree] = None,
    n_cores: int = 1,
    grid_rows: int = 1,
    cache: Union[ProgramCache, None, bool] = None,
) -> Program:
    """Resolve one DAG shape through the shared program cache.

    ``cache`` overrides the store: ``None`` (default) uses the process-wide
    :data:`PROGRAM_CACHE`, ``False`` compiles fresh without caching, and an
    explicit :class:`ProgramCache` uses that instance.
    """
    if cache is False:
        return compile_program(
            algorithm,
            p,
            q,
            tree,
            lq_tree=lq_tree,
            prequr_tree=prequr_tree,
            n_cores=n_cores,
            grid_rows=grid_rows,
        )
    store = PROGRAM_CACHE if cache is None or cache is True else cache
    return store.get_or_compile(
        algorithm,
        p,
        q,
        tree,
        lq_tree=lq_tree,
        prequr_tree=prequr_tree,
        n_cores=n_cores,
        grid_rows=grid_rows,
    )


def clear_program_cache() -> int:
    """Clear the process-wide program cache (returns evicted entry count)."""
    return PROGRAM_CACHE.clear()


def program_cache_stats() -> Dict[str, int]:
    """Hit/miss/entry counters of the process-wide program cache."""
    return PROGRAM_CACHE.stats
