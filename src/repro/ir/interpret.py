"""Replay a compiled Program against any kernel executor.

``replay(program, executor)`` re-issues the program's op stream, in its
original sequentially consistent order, as calls on a
:class:`~repro.algorithms.executor.KernelExecutor`.  Replaying onto a
:class:`~repro.algorithms.executor.NumericExecutor` performs the real
factorization; replaying onto a second recorder reproduces the program.
This is what makes the numeric runs, the DAG analyses and the runtime
simulation provably consume the same op stream: they all interpret the
same compiled :class:`~repro.ir.program.Program`.
"""

from __future__ import annotations

from repro.algorithms.executor import KernelExecutor
from repro.ir.program import Program
from repro.kernels.costs import KERNEL_LIST

#: Executor method name per kernel code (replay dispatch table).
_METHOD_NAMES = tuple(k.name.lower() for k in KERNEL_LIST)


def replay(program: Program, executor: KernelExecutor) -> None:
    """Dispatch every op of ``program`` to ``executor``, in stream order.

    The executor must cover the program's tile shape: replaying a ``p x q``
    program onto a smaller matrix would index out of range.
    """
    key = program.key
    if key is not None:
        _, p, q = key[0], key[1], key[2]
        if executor.p < p or executor.q < q:
            raise ValueError(
                f"program was compiled for {p}x{q} tiles but the executor "
                f"covers only {executor.p}x{executor.q}"
            )
    cols = program.columns
    if cols is not None:
        # Column path: dispatch straight off the packed kernel-code and
        # params columns — no Op materialization, one bound method per
        # kernel resolved up front.
        methods = [getattr(executor, name) for name in _METHOD_NAMES]
        for code, params in zip(cols.kernels, cols.params):
            methods[code](*params)
        return
    for op in program.ops:
        getattr(executor, op.kernel.name.lower())(*op.params)
