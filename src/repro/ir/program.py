"""The op-stream Program IR and its dependency analyzer.

A :class:`Program` is the compiled form of one tiled algorithm at one tile
shape: a flat stream of :class:`Op` records (one per tile-kernel call, in
the sequentially consistent order the driver issued them) plus the
dependency DAG stored as two CSR arrays (predecessors and successors).
Programs are immutable and cheap to replay, which is what lets a tuning
sweep trace each DAG shape once and re-schedule it many times.

The dependencies are inferred by :class:`DependencyAnalyzer`, the
superscalar logic a PaRSEC/StarPU-style runtime applies to its task
stream (previously buried inside :mod:`repro.dag.tracer`):

* a task that *writes* a data item depends on the item's last writer and on
  every reader since that write (RAW + WAR);
* a task that *reads* a data item depends on its last writer (RAW).

Data items are tile *halves* (upper = factor part, lower = reflector part);
see :mod:`repro.dag.task` for why this split is needed to reproduce the
dependency structure — and hence the critical paths — of the paper.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.dag.task import DataItem, Task, TaskGraph
from repro.kernels.costs import KernelName


@dataclass(frozen=True)
class Op:
    """One tile-kernel instance in a compiled program.

    The fields mirror :class:`repro.dag.task.Task` (``index`` plays the
    role of the dense task id) so that programs and legacy task graphs are
    freely interconvertible.
    """

    index: int
    kernel: KernelName
    params: Tuple[int, ...]
    reads: FrozenSet[DataItem]
    writes: FrozenSet[DataItem]
    weight: int
    owner_tile: Tuple[int, int]
    step: str = ""


class DependencyAnalyzer:
    """Superscalar RAW/WAR dependency inference over a stream of accesses.

    Feed it one op at a time (:meth:`add`) and it returns the ids of the
    ops the new op depends on.  Data items are iterated in sorted order, so
    the produced edge ordering is independent of ``PYTHONHASHSEED`` — a
    prerequisite for bit-reproducible schedules.
    """

    def __init__(self) -> None:
        self._last_writer: Dict[DataItem, int] = {}
        self._readers_since_write: Dict[DataItem, List[int]] = {}
        self._count = 0

    def add(
        self, reads: FrozenSet[DataItem], writes: FrozenSet[DataItem]
    ) -> List[int]:
        """Register op ``id = current count``; return its predecessor ids."""
        tid = self._count
        self._count += 1
        preds: set[int] = set()
        for item in sorted(reads | writes):
            writer = self._last_writer.get(item)
            if writer is not None:
                preds.add(writer)
        for item in sorted(writes):
            # WAR: wait for every reader since the last write.
            preds.update(self._readers_since_write.get(item, ()))
        # Update the bookkeeping *after* all edges are found.
        for item in writes:
            self._last_writer[item] = tid
            self._readers_since_write[item] = []
        for item in reads - writes:
            self._readers_since_write.setdefault(item, []).append(tid)
        preds.discard(tid)
        return sorted(preds)


def _csr_from_lists(lists: Sequence[Sequence[int]]) -> Tuple[array, array]:
    indptr = array("q", [0])
    ids = array("q")
    for row in lists:
        ids.extend(row)
        indptr.append(len(ids))
    return indptr, ids


class Program:
    """An immutable op stream with CSR dependency structure.

    Build one with :meth:`from_ops` (runs the :class:`DependencyAnalyzer`),
    :meth:`from_task_graph` (wraps a legacy :class:`~repro.dag.task.TaskGraph`)
    or, most commonly, through :func:`repro.ir.compiler.compile_program`.
    """

    __slots__ = (
        "ops",
        "key",
        "_pred_indptr",
        "_pred_ids",
        "_succ_indptr",
        "_succ_ids",
    )

    def __init__(
        self,
        ops: Sequence[Op],
        pred_lists: Sequence[Sequence[int]],
        key: Optional[Tuple] = None,
    ) -> None:
        self.ops: Tuple[Op, ...] = tuple(ops)
        self.key = key
        n = len(self.ops)
        if len(pred_lists) != n:
            raise ValueError(
                f"{n} ops but {len(pred_lists)} predecessor lists"
            )
        succ_lists: List[List[int]] = [[] for _ in range(n)]
        for dst, preds in enumerate(pred_lists):
            for src in preds:
                if not (0 <= src < dst):
                    raise ValueError(
                        f"edge {src} -> {dst} violates insertion-order topology"
                    )
                succ_lists[src].append(dst)
        self._pred_indptr, self._pred_ids = _csr_from_lists(pred_lists)
        self._succ_indptr, self._succ_ids = _csr_from_lists(succ_lists)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_ops(cls, ops: Iterable[Op], key: Optional[Tuple] = None) -> "Program":
        """Analyze the access sets of ``ops`` and build the CSR dependency DAG."""
        ops = tuple(ops)
        analyzer = DependencyAnalyzer()
        pred_lists = [analyzer.add(op.reads, op.writes) for op in ops]
        return cls(ops, pred_lists, key=key)

    @classmethod
    def from_task_graph(cls, graph: TaskGraph) -> "Program":
        """Wrap an explicit legacy task graph (keeps its exact edge set)."""
        ops = [
            Op(
                index=t.id,
                kernel=t.kernel,
                params=t.params,
                reads=t.reads,
                writes=t.writes,
                weight=t.weight,
                owner_tile=t.owner_tile,
                step=t.step,
            )
            for t in graph.tasks
        ]
        pred_lists = [sorted(graph.predecessors[t.id]) for t in graph.tasks]
        return cls(ops, pred_lists)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.ops)

    @property
    def n_edges(self) -> int:
        return len(self._pred_ids)

    def predecessors(self, index: int) -> Sequence[int]:
        """Ids of the ops ``index`` depends on (ascending)."""
        return self._pred_ids[self._pred_indptr[index]: self._pred_indptr[index + 1]]

    def successors(self, index: int) -> Sequence[int]:
        """Ids of the ops depending on ``index`` (ascending)."""
        return self._succ_ids[self._succ_indptr[index]: self._succ_indptr[index + 1]]

    def indegrees(self) -> List[int]:
        """Number of predecessors of each op (fresh list, safe to mutate)."""
        indptr = self._pred_indptr
        return [indptr[i + 1] - indptr[i] for i in range(len(self.ops))]

    def sources(self) -> List[int]:
        """Ops with no predecessors."""
        return [i for i, d in enumerate(self.indegrees()) if d == 0]

    def edges(self) -> Iterable[Tuple[int, int]]:
        """All ``(src, dst)`` dependency pairs, grouped by ``dst``."""
        for dst in range(len(self.ops)):
            for src in self.predecessors(dst):
                yield (src, dst)

    # ------------------------------------------------------------------ #
    # Aggregates and analyses
    # ------------------------------------------------------------------ #
    def total_weight(self) -> int:
        """Sum of all op weights (the sequential time in Table-I units)."""
        return sum(op.weight for op in self.ops)

    def kernel_counts(self) -> Dict[KernelName, int]:
        """Histogram of kernel types."""
        counts: Dict[KernelName, int] = {}
        for op in self.ops:
            counts[op.kernel] = counts.get(op.kernel, 0) + 1
        return counts

    def critical_path(
        self, weight_fn: Optional[Callable[[Op], float]] = None
    ) -> float:
        """Length of the heaviest dependent chain.

        The default weighs ops by their Table-I weight (``nb^3 / 3`` flop
        units), matching :func:`repro.dag.critical_path.critical_path_length`.
        """
        if not self.ops:
            return 0.0
        if weight_fn is None:
            weight_fn = lambda op: float(op.weight)  # noqa: E731
        finish = [0.0] * len(self.ops)
        best = 0.0
        for i, op in enumerate(self.ops):
            start = 0.0
            for pred in self.predecessors(i):
                if finish[pred] > start:
                    start = finish[pred]
            end = start + weight_fn(op)
            finish[i] = end
            if end > best:
                best = end
        return best

    def bottom_levels(self, durations: Sequence[float]) -> List[float]:
        """Longest downstream path (inclusive) of each op, in ``durations`` units."""
        n = len(self.ops)
        levels = [0.0] * n
        for i in range(n - 1, -1, -1):
            succ_best = 0.0
            for s in self.successors(i):
                if levels[s] > succ_best:
                    succ_best = levels[s]
            levels[i] = durations[i] + succ_best
        return levels

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #
    def to_task_graph(self) -> TaskGraph:
        """Materialize a fresh legacy :class:`~repro.dag.task.TaskGraph`.

        Each call builds a new graph, so callers may mutate the result
        without corrupting a cached program.
        """
        graph = TaskGraph()
        for op in self.ops:
            graph.add_task(
                Task(
                    id=op.index,
                    kernel=op.kernel,
                    params=op.params,
                    reads=op.reads,
                    writes=op.writes,
                    weight=op.weight,
                    owner_tile=op.owner_tile,
                    step=op.step,
                )
            )
        for src, dst in self.edges():
            graph.add_edge(src, dst)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Program(n_ops={len(self.ops)}, n_edges={self.n_edges}, key={self.key!r})"
