"""The op-stream Program IR and its dependency analyzer.

A :class:`Program` is the compiled form of one tiled algorithm at one tile
shape: a flat stream of :class:`Op` records (one per tile-kernel call, in
the sequentially consistent order the driver issued them) plus the
dependency DAG stored as two CSR arrays (predecessors and successors).
Programs are immutable and cheap to replay, which is what lets a tuning
sweep trace each DAG shape once and re-schedule it many times.

The dependencies are inferred by :class:`DependencyAnalyzer`, the
superscalar logic a PaRSEC/StarPU-style runtime applies to its task
stream (previously buried inside :mod:`repro.dag.tracer`):

* a task that *writes* a data item depends on the item's last writer and on
  every reader since that write (RAW + WAR);
* a task that *reads* a data item depends on its last writer (RAW).

Data items are tile *halves* (upper = factor part, lower = reflector part);
see :mod:`repro.dag.task` for why this split is needed to reproduce the
dependency structure — and hence the critical paths — of the paper.

Structure-of-arrays fast path
-----------------------------

Besides the legacy object form (a tuple of :class:`Op` records), a program
carries packed *columns*: numpy vectors of kernel codes, Table-I weights,
owner-tile coordinates and CSR views, plus a cached topological level
decomposition.  The columns are what the batched task-runtime designs the
paper builds on (PaRSEC/DPLASMA) keep hot: the simulation engine's inner
loop and the critical-path/bottom-level analyses touch only flat int/float
arrays, never per-op Python objects.  Programs recorded through
:class:`~repro.ir.recorder.ProgramRecorder` are born in column form
(:meth:`Program.from_columns`) and materialize the ``ops`` tuple lazily —
compiling a million-op DAG never builds a million ``Op`` objects unless a
legacy consumer asks for them.  Both forms describe the same program; the
vectorized analyses are bit-identical to the per-node recursions they
replace (asserted by the equivalence tests).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from itertools import chain
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.dag.task import DataItem, Task, TaskGraph
from repro.kernels.costs import (
    KERNEL_CODES,
    KERNEL_LIST,
    KERNEL_WEIGHTS,
    KernelName,
)

#: Table-I weights indexed by kernel code (see ``KERNEL_LIST``).
_WEIGHT_BY_CODE = np.array(
    [KERNEL_WEIGHTS[k] for k in KERNEL_LIST], dtype=np.int64
)
_WEIGHT_BY_CODE.setflags(write=False)


@dataclass(frozen=True)
class Op:
    """One tile-kernel instance in a compiled program.

    The fields mirror :class:`repro.dag.task.Task` (``index`` plays the
    role of the dense task id) so that programs and legacy task graphs are
    freely interconvertible.
    """

    index: int
    kernel: KernelName
    params: Tuple[int, ...]
    reads: FrozenSet[DataItem]
    writes: FrozenSet[DataItem]
    weight: int
    owner_tile: Tuple[int, int]
    step: str = ""


class DependencyAnalyzer:
    """Superscalar RAW/WAR dependency inference over a stream of accesses.

    Feed it one op at a time (:meth:`add`) and it returns the ids of the
    ops the new op depends on.  Data items are iterated in sorted order, so
    the produced edge ordering is independent of ``PYTHONHASHSEED`` — a
    prerequisite for bit-reproducible schedules.

    This is the object-path analyzer (data items are tuples); the compiler
    hot path uses :func:`analyze_coded_stream`, the same rules specialized
    for integer-coded items over dense tables.
    """

    def __init__(self) -> None:
        self._last_writer: Dict[DataItem, int] = {}
        self._readers_since_write: Dict[DataItem, List[int]] = {}
        self._count = 0

    def add(
        self, reads: FrozenSet[DataItem], writes: FrozenSet[DataItem]
    ) -> List[int]:
        """Register op ``id = current count``; return its predecessor ids."""
        tid = self._count
        self._count += 1
        preds: set[int] = set()
        for item in sorted(reads | writes):
            writer = self._last_writer.get(item)
            if writer is not None:
                preds.add(writer)
        for item in sorted(writes):
            # WAR: wait for every reader since the last write.
            preds.update(self._readers_since_write.get(item, ()))
        # Update the bookkeeping *after* all edges are found.
        for item in sorted(writes):
            self._last_writer[item] = tid
            self._readers_since_write[item] = []
        for item in sorted(reads - writes):
            self._readers_since_write.setdefault(item, []).append(tid)
        preds.discard(tid)
        return sorted(preds)


def analyze_coded_stream(
    reads_list: Sequence[Tuple[int, ...]],
    writes_list: Sequence[Tuple[int, ...]],
    n_items: int,
) -> Tuple[List[List[int]], List[int]]:
    """RAW/WAR inference over integer-coded data items (the compiler hot path).

    Applies exactly the rules of :class:`DependencyAnalyzer` — the produced
    predecessor *sets* are identical — but items are dense integer codes
    indexed into flat tables instead of tuples hashed into dicts, which is
    several times faster on the million-op streams the SoA path targets.
    Each op's predecessor list is returned unsorted (deterministically:
    integer set iteration does not depend on ``PYTHONHASHSEED``);
    :meth:`Program.from_columns` normalizes edge order with one vectorized
    lexsort instead of one ``sorted()`` per op.  Also returns each op's
    topological *hop level* (``1 + max`` over predecessor levels), computed
    for free while the predecessors are in hand; the level decomposition
    drives the vectorized critical-path / bottom-level sweeps of
    :class:`Program`.
    """
    n = len(reads_list)
    last_writer = [-1] * n_items
    readers: List[Optional[List[int]]] = [None] * n_items
    # Predecessor dedup via epoch stamps: stamp[w] == tid + 1 means
    # producer w is already collected for the op being analyzed.  O(1)
    # integer compares instead of per-op set construction and hashing.
    stamp = [0] * n
    pred_lists: List[List[int]] = []
    levels: List[int] = []
    add_preds = pred_lists.append
    add_level = levels.append
    for tid, (reads, writes) in enumerate(zip(reads_list, writes_list)):
        mark = tid + 1
        stamp[tid] = mark  # pre-marking tid makes self-edges impossible
        preds: List[int] = []
        collect = preds.append
        for it in reads:
            w = last_writer[it]
            if w >= 0 and stamp[w] != mark:
                stamp[w] = mark
                collect(w)
        # One fused pass per written item: RAW edge, WAR edges, then claim
        # the item (items are distinct within one op's write set, so the
        # in-place claim cannot affect a later item of the same op).
        for it in writes:
            w = last_writer[it]
            if w >= 0 and stamp[w] != mark:
                stamp[w] = mark
                collect(w)
            r = readers[it]
            if r:
                for x in r:
                    if stamp[x] != mark:
                        stamp[x] = mark
                        collect(x)
            last_writer[it] = tid
            readers[it] = None
        for it in reads:
            if it not in writes:
                r = readers[it]
                if r is None:
                    readers[it] = [tid]
                else:
                    r.append(tid)
        lv = 0
        for w in preds:
            cand = levels[w] + 1
            if cand > lv:
                lv = cand
        add_level(lv)
        add_preds(preds)
    return pred_lists, levels


class OpColumns:
    """One op stream in structure-of-arrays form (parallel per-op columns).

    ``kernels`` holds kernel codes (indices into
    :data:`repro.kernels.costs.KERNEL_LIST`); ``reads``/``writes`` hold
    tuples of integer-coded data items — the upper half of tile ``(i, j)``
    codes as ``i * q + j`` and the lower half as ``p * q + i * q + j`` —
    and ``rows``/``cols`` the owner-tile coordinates.  Produced by
    :class:`~repro.ir.recorder.ProgramRecorder`, consumed by
    :meth:`Program.from_columns`; :meth:`op` decodes one column row back
    into a full :class:`Op` object for the legacy consumers.
    """

    __slots__ = (
        "q", "pq", "kernels", "params", "reads", "writes", "rows", "cols",
        "steps",
    )

    def __init__(
        self,
        q: int,
        pq: int,
        kernels: Sequence[int],
        params: Sequence[Tuple[int, ...]],
        reads: Sequence[Tuple[int, ...]],
        writes: Sequence[Tuple[int, ...]],
        rows: Sequence[int],
        cols: Sequence[int],
        steps: Sequence[str],
    ) -> None:
        self.q = q
        self.pq = pq
        self.kernels = kernels
        self.params = params
        self.reads = reads
        self.writes = writes
        self.rows = rows
        self.cols = cols
        self.steps = steps

    def __len__(self) -> int:
        return len(self.kernels)

    def decode_item(self, code: int) -> DataItem:
        """Integer item code back to the ``("U"/"L", i, j)`` tuple form."""
        if code < self.pq:
            return ("U", code // self.q, code % self.q)
        code -= self.pq
        return ("L", code // self.q, code % self.q)

    def op(self, index: int) -> Op:
        """Materialize one :class:`Op` from the columns."""
        kernel = KERNEL_LIST[self.kernels[index]]
        decode = self.decode_item
        return Op(
            index=index,
            kernel=kernel,
            params=self.params[index],
            reads=frozenset(decode(c) for c in self.reads[index]),
            writes=frozenset(decode(c) for c in self.writes[index]),
            weight=KERNEL_WEIGHTS[kernel],
            owner_tile=(self.rows[index], self.cols[index]),
            step=self.steps[index],
        )

    def to_ops(self) -> Tuple[Op, ...]:
        """Materialize the whole stream as :class:`Op` objects."""
        return tuple(self.op(i) for i in range(len(self.kernels)))


def _csr_from_lists(lists: Sequence[Sequence[int]]) -> Tuple[array, array]:
    indptr = array("q", [0])
    ids = array("q")
    for row in lists:
        ids.extend(row)
        indptr.append(len(ids))
    return indptr, ids


def _array_from_np(a: np.ndarray) -> array:
    """int64 numpy array -> ``array('q')`` (fast Python-loop element access)."""
    out = array("q")
    out.frombytes(np.ascontiguousarray(a, dtype=np.int64).tobytes())
    return out


def _np_view(a: array) -> np.ndarray:
    """Zero-copy read-only int64 view of an ``array('q')``."""
    if len(a) == 0:
        out = np.zeros(0, dtype=np.int64)
    else:
        out = np.frombuffer(a, dtype=np.int64)
    out.setflags(write=False)
    return out


class Program:
    """An immutable op stream with CSR dependency structure.

    Build one with :meth:`from_ops` (runs the :class:`DependencyAnalyzer`),
    :meth:`from_task_graph` (wraps a legacy :class:`~repro.dag.task.TaskGraph`),
    :meth:`from_columns` (the structure-of-arrays compiler path) or, most
    commonly, through :func:`repro.ir.compiler.compile_program`.

    The dependency CSR is stored twice: as ``array('q')`` (fast scalar
    access from the engine's event loop) and as zero-copy numpy views
    (``pred_indptr_np`` and friends) feeding the vectorized analyses.
    """

    __slots__ = (
        "key",
        "_ops",
        "_cols",
        "_pred_indptr",
        "_pred_ids",
        "_succ_indptr",
        "_succ_ids",
        "_cache",
        "__weakref__",
    )

    def __init__(
        self,
        ops: Sequence[Op],
        pred_lists: Sequence[Sequence[int]],
        key: Optional[Tuple] = None,
    ) -> None:
        self._ops: Optional[Tuple[Op, ...]] = tuple(ops)
        self._cols: Optional[OpColumns] = None
        self._cache: Dict[str, object] = {}
        self.key = key
        n = len(self._ops)
        if len(pred_lists) != n:
            raise ValueError(
                f"{n} ops but {len(pred_lists)} predecessor lists"
            )
        succ_lists: List[List[int]] = [[] for _ in range(n)]
        for dst, preds in enumerate(pred_lists):
            for src in preds:
                if not (0 <= src < dst):
                    raise ValueError(
                        f"edge {src} -> {dst} violates insertion-order topology"
                    )
                succ_lists[src].append(dst)
        self._pred_indptr, self._pred_ids = _csr_from_lists(pred_lists)
        self._succ_indptr, self._succ_ids = _csr_from_lists(succ_lists)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_ops(cls, ops: Iterable[Op], key: Optional[Tuple] = None) -> "Program":
        """Analyze the access sets of ``ops`` and build the CSR dependency DAG."""
        ops = tuple(ops)
        analyzer = DependencyAnalyzer()
        pred_lists = [analyzer.add(op.reads, op.writes) for op in ops]
        return cls(ops, pred_lists, key=key)

    @classmethod
    def from_task_graph(cls, graph: TaskGraph) -> "Program":
        """Wrap an explicit legacy task graph (keeps its exact edge set)."""
        ops = [
            Op(
                index=t.id,
                kernel=t.kernel,
                params=t.params,
                reads=t.reads,
                writes=t.writes,
                weight=t.weight,
                owner_tile=t.owner_tile,
                step=t.step,
            )
            for t in graph.tasks
        ]
        pred_lists = [sorted(graph.predecessors[t.id]) for t in graph.tasks]
        return cls(ops, pred_lists)

    @classmethod
    def from_columns(
        cls,
        cols: OpColumns,
        pred_lists: Sequence[Sequence[int]],
        key: Optional[Tuple] = None,
        levels: Optional[Sequence[int]] = None,
    ) -> "Program":
        """Build a program from packed columns (the SoA compiler path).

        ``pred_lists`` may be unsorted within each op (as
        :func:`analyze_coded_stream` emits them); edge order is normalized
        here with one vectorized lexsort, and the insertion-order topology
        (``src < dst``) is validated with two whole-array comparisons.
        ``levels``, when given, are the hop levels the analyzer computed
        alongside.  ``ops`` materializes lazily on first access.
        """
        n = len(cols)
        if len(pred_lists) != n:
            raise ValueError(
                f"{n} ops but {len(pred_lists)} predecessor lists"
            )
        self = object.__new__(cls)
        self._ops = None
        self._cols = cols
        self._cache = {}
        self.key = key

        counts = np.fromiter(map(len, pred_lists), dtype=np.int64, count=n)
        pred_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=pred_indptr[1:])
        total = int(pred_indptr[-1])
        pred_ids = np.fromiter(
            chain.from_iterable(pred_lists), dtype=np.int64, count=total
        )
        dst = np.repeat(np.arange(n, dtype=np.int64), counts)
        # Normalize: predecessors ascending within each op (one lexsort —
        # dst groups are already contiguous, pred order within may not be).
        pred_ids = pred_ids[np.lexsort((pred_ids, dst))]
        if total and (
            int(pred_ids.min()) < 0 or bool(np.any(pred_ids >= dst))
        ):
            bad = int(np.flatnonzero((pred_ids < 0) | (pred_ids >= dst))[0])
            raise ValueError(
                f"edge {int(pred_ids[bad])} -> {int(dst[bad])} violates "
                "insertion-order topology"
            )
        # Successor CSR: edges sorted by src (stable, so dst stays ascending
        # within each src — the edge stream is grouped by dst ascending).
        order = np.argsort(pred_ids, kind="stable")
        succ_ids = dst[order]
        succ_counts = (
            np.bincount(pred_ids, minlength=n) if total else
            np.zeros(n, dtype=np.int64)
        )
        succ_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(succ_counts, out=succ_indptr[1:])

        self._pred_indptr = _array_from_np(pred_indptr)
        self._pred_ids = _array_from_np(pred_ids)
        self._succ_indptr = _array_from_np(succ_indptr)
        self._succ_ids = _array_from_np(succ_ids)
        if levels is not None:
            lv = np.asarray(levels, dtype=np.int64)
            lv.setflags(write=False)
            self._cache["levels"] = lv
        return self

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def ops(self) -> Tuple[Op, ...]:
        """The op stream as :class:`Op` objects (materialized lazily)."""
        ops = self._ops
        if ops is None:
            assert self._cols is not None
            ops = self._cols.to_ops()
            self._ops = ops
        return ops

    @property
    def columns(self) -> Optional[OpColumns]:
        """The packed columns, or ``None`` for object-built programs."""
        return self._cols

    def __len__(self) -> int:
        if self._ops is not None:
            return len(self._ops)
        assert self._cols is not None
        return len(self._cols)

    @property
    def n_edges(self) -> int:
        return len(self._pred_ids)

    def predecessors(self, index: int) -> Sequence[int]:
        """Ids of the ops ``index`` depends on (ascending)."""
        return self._pred_ids[self._pred_indptr[index]: self._pred_indptr[index + 1]]

    def successors(self, index: int) -> Sequence[int]:
        """Ids of the ops depending on ``index`` (ascending)."""
        return self._succ_ids[self._succ_indptr[index]: self._succ_indptr[index + 1]]

    def indegrees(self) -> List[int]:
        """Number of predecessors of each op (fresh list, safe to mutate)."""
        indptr = self._pred_indptr
        return [indptr[i + 1] - indptr[i] for i in range(len(self))]

    def sources(self) -> List[int]:
        """Ops with no predecessors."""
        return [i for i, d in enumerate(self.indegrees()) if d == 0]

    def edges(self) -> Iterable[Tuple[int, int]]:
        """All ``(src, dst)`` dependency pairs, grouped by ``dst``."""
        for dst in range(len(self)):
            for src in self.predecessors(dst):
                yield (src, dst)

    # ------------------------------------------------------------------ #
    # Structure-of-arrays columns (cached, zero-copy where possible)
    # ------------------------------------------------------------------ #
    def _cached(self, name: str, build: Callable[[], Any]) -> Any:
        try:
            return self._cache[name]
        except KeyError:
            value = build()
            self._cache[name] = value
            return value

    @property
    def pred_indptr_np(self) -> np.ndarray:
        return self._cached("pred_indptr", lambda: _np_view(self._pred_indptr))

    @property
    def pred_ids_np(self) -> np.ndarray:
        return self._cached("pred_ids", lambda: _np_view(self._pred_ids))

    @property
    def succ_indptr_np(self) -> np.ndarray:
        return self._cached("succ_indptr", lambda: _np_view(self._succ_indptr))

    @property
    def succ_ids_np(self) -> np.ndarray:
        return self._cached("succ_ids", lambda: _np_view(self._succ_ids))

    def succ_csr_lists(self) -> Tuple[List[int], List[int]]:
        """The successor CSR as plain Python int lists (cached).

        The engine's event loop indexes these millions of times; list
        element access hands back interned int objects instead of
        materializing a fresh ``int`` per ``array('q')`` access.
        """
        def build() -> Tuple[List[int], List[int]]:
            return self._succ_indptr.tolist(), self._succ_ids.tolist()

        return self._cached("succ_csr_lists", build)

    def _int_column(
        self,
        name: str,
        from_cols: Callable[[OpColumns], Sequence[int]],
        from_ops: Callable[[Sequence[Op]], Iterable[int]],
    ) -> np.ndarray:
        def build() -> np.ndarray:
            n = len(self)
            if self._cols is not None:
                src = from_cols(self._cols)
            else:
                assert self._ops is not None
                src = from_ops(self._ops)
            if isinstance(src, (tuple, list)):
                out = np.array(src, dtype=np.int64)
            else:
                out = np.fromiter(src, dtype=np.int64, count=n)
            out.setflags(write=False)
            return out

        return self._cached(name, build)

    @property
    def kernel_codes_np(self) -> np.ndarray:
        """Kernel code of every op (index into ``KERNEL_LIST``), int64."""
        return self._int_column(
            "kernel_codes",
            lambda c: c.kernels,
            lambda ops: (KERNEL_CODES[op.kernel] for op in ops),
        )

    @property
    def weights_np(self) -> np.ndarray:
        """Weight of every op (``nb^3/3`` flop units), int64.

        Column-built programs derive the Table-I weights from the kernel
        codes (the recorder stamps exactly those); object-built programs
        read the ``weight`` field actually carried by each :class:`Op`,
        which callers are free to have customized.
        """
        def build() -> np.ndarray:
            if self._cols is not None:
                out = _WEIGHT_BY_CODE[self.kernel_codes_np]
            else:
                assert self._ops is not None
                out = np.fromiter(
                    (op.weight for op in self._ops),
                    dtype=np.int64,
                    count=len(self._ops),
                )
            out.setflags(write=False)
            return out

        return self._cached("weights", build)

    @property
    def owner_rows_np(self) -> np.ndarray:
        """Owner-tile row coordinate of every op, int64."""
        return self._int_column(
            "owner_rows",
            lambda c: c.rows,
            lambda ops: (op.owner_tile[0] for op in ops),
        )

    @property
    def owner_cols_np(self) -> np.ndarray:
        """Owner-tile column coordinate of every op, int64."""
        return self._int_column(
            "owner_cols",
            lambda c: c.cols,
            lambda ops: (op.owner_tile[1] for op in ops),
        )

    @property
    def writes_count_np(self) -> np.ndarray:
        """Number of data items (tile halves) each op writes, int64."""
        return self._int_column(
            "writes_count",
            lambda c: map(len, c.writes),
            lambda ops: (len(op.writes) for op in ops),
        )

    @property
    def levels_np(self) -> np.ndarray:
        """Topological hop level of every op (``1 + max`` over predecessors).

        Computed by the analyzer on the compiler path; object-built
        programs derive it with one forward pass over the pred CSR.
        """
        def build() -> np.ndarray:
            n = len(self)
            indptr = self._pred_indptr
            ids = self._pred_ids
            level = [0] * n
            for i in range(n):
                best = -1
                for k in range(indptr[i], indptr[i + 1]):
                    lv = level[ids[k]]
                    if lv > best:
                        best = lv
                level[i] = best + 1
            out = np.array(level, dtype=np.int64)
            out.setflags(write=False)
            return out

        return self._cached("levels", build)

    # ------------------------------------------------------------------ #
    # Vectorized topological level sweeps
    # ------------------------------------------------------------------ #
    def _level_order(self) -> Tuple[np.ndarray, np.ndarray]:
        """Op ids grouped by level: ``(order, level_indptr)``."""
        def build() -> Tuple[np.ndarray, np.ndarray]:
            level = self.levels_np
            n = len(self)
            if n == 0:
                return np.zeros(0, np.int64), np.zeros(1, np.int64)
            order = np.argsort(level, kind="stable")
            counts = np.bincount(level)
            indptr = np.zeros(len(counts) + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            return order, indptr

        return self._cached("level_order", build)

    def _sweep_groups(
        self, name: str, indptr_np: np.ndarray, ids_np: np.ndarray,
        descending: bool,
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-level gather structure ``(nodes, neighbor gather, offsets)``.

        For each level (descending for bottom-level sweeps over the succ
        CSR, ascending for critical-path sweeps over the pred CSR), the
        nodes with at least one neighbor, a flattened gather of their CSR
        rows and the reduceat segment offsets.  Built once per program and
        reused by every (machine, policy) combination that sweeps it.
        """
        def build() -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
            order, _ = self._level_order()
            counts = np.diff(indptr_np)
            ord2 = order[::-1] if descending else order
            keep = counts[ord2] > 0
            nodes_all = ord2[keep]
            if nodes_all.size == 0:
                return []
            c = counts[nodes_all]
            starts = indptr_np[nodes_all]
            cum = np.cumsum(c)
            offsets_all = cum - c
            total = int(cum[-1])
            # Flatten the CSR rows of all swept nodes in level order.
            idx = np.repeat(starts - offsets_all, c) + np.arange(total)
            gather_all = ids_np[idx]
            # Group boundaries: positions where the (monotone) level changes.
            level_of = self.levels_np[nodes_all]
            change = np.flatnonzero(np.diff(level_of)) + 1
            bounds = np.concatenate(
                ([0], change, [nodes_all.size])
            ).tolist()
            groups = []
            for gi in range(len(bounds) - 1):
                a, b = bounds[gi], bounds[gi + 1]
                ea = int(offsets_all[a])
                eb = int(offsets_all[b - 1] + c[b - 1])
                groups.append(
                    (nodes_all[a:b], gather_all[ea:eb], offsets_all[a:b] - ea)
                )
            return groups

        return self._cached(name, build)

    def bottom_levels_np(self, durations: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`bottom_levels` (bit-identical results).

        A reverse topological level sweep: all ops of one level take the
        segmented max over their successors' levels at once
        (``np.maximum.reduceat``), replacing the per-node Python recursion.
        """
        durations = np.ascontiguousarray(durations, dtype=np.float64)
        out = durations.copy()
        groups = self._sweep_groups(
            "rev_sweep", self.succ_indptr_np, self.succ_ids_np, descending=True
        )
        for nodes, gather, offsets in groups:
            seg = np.maximum.reduceat(out[gather], offsets)
            out[nodes] = durations[nodes] + seg
        return out

    def critical_path_np(self, durations: np.ndarray) -> float:
        """Vectorized duration-weighted critical path (bit-identical).

        A forward topological level sweep over the predecessor CSR; the
        critical path is the max finish time.
        """
        n = len(self)
        if n == 0:
            return 0.0
        durations = np.ascontiguousarray(durations, dtype=np.float64)
        finish = durations.copy()
        groups = self._sweep_groups(
            "fwd_sweep", self.pred_indptr_np, self.pred_ids_np,
            descending=False,
        )
        for nodes, gather, offsets in groups:
            seg = np.maximum.reduceat(finish[gather], offsets)
            finish[nodes] = durations[nodes] + seg
        return float(finish.max())

    def critical_path_many(self, durations_2d: np.ndarray) -> np.ndarray:
        """Critical paths for a stack of duration vectors at once.

        ``durations_2d`` has shape ``(k, n_ops)`` — one row per candidate
        machine.  Each row's result is bit-identical to
        :meth:`critical_path_np` on that row alone: the same cached sweep
        groups drive a segmented max with ``axis=1``, so the batch layer
        can bound k candidates with one pass over the level structure.
        """
        durations_2d = np.ascontiguousarray(durations_2d, dtype=np.float64)
        if durations_2d.ndim != 2:
            raise ValueError("critical_path_many expects a 2-D (k, n_ops) array")
        k, n = durations_2d.shape
        if n != len(self):
            raise ValueError(
                f"durations_2d has {n} columns for a {len(self)}-op program"
            )
        if n == 0 or k == 0:
            return np.zeros(k, dtype=np.float64)
        finish = durations_2d.copy()
        groups = self._sweep_groups(
            "fwd_sweep", self.pred_indptr_np, self.pred_ids_np,
            descending=False,
        )
        for nodes, gather, offsets in groups:
            seg = np.maximum.reduceat(finish[:, gather], offsets, axis=1)
            finish[:, nodes] = durations_2d[:, nodes] + seg
        return finish.max(axis=1)

    # ------------------------------------------------------------------ #
    # Aggregates and analyses
    # ------------------------------------------------------------------ #
    def total_weight(self) -> int:
        """Sum of all op weights (the sequential time in Table-I units)."""
        return int(self.weights_np.sum())

    def kernel_counts(self) -> Dict[KernelName, int]:
        """Histogram of kernel types."""
        counts = np.bincount(self.kernel_codes_np, minlength=len(KERNEL_LIST))
        return {
            KERNEL_LIST[code]: int(c)
            for code, c in enumerate(counts)
            if c > 0
        }

    def critical_path(
        self, weight_fn: Optional[Callable[[Op], float]] = None
    ) -> float:
        """Length of the heaviest dependent chain.

        The default weighs ops by their Table-I weight (``nb^3 / 3`` flop
        units), matching :func:`repro.dag.critical_path.critical_path_length`,
        and runs the vectorized level sweep; an explicit ``weight_fn``
        falls back to the per-op loop (it needs the ``Op`` objects).
        """
        if len(self) == 0:
            return 0.0
        if weight_fn is None:
            return self.critical_path_np(
                self.weights_np.astype(np.float64)
            )
        finish = [0.0] * len(self)
        best = 0.0
        for i, op in enumerate(self.ops):
            start = 0.0
            for pred in self.predecessors(i):
                if finish[pred] > start:
                    start = finish[pred]
            end = start + weight_fn(op)
            finish[i] = end
            if end > best:
                best = end
        return best

    def bottom_levels(self, durations: Sequence[float]) -> List[float]:
        """Longest downstream path (inclusive) of each op, in ``durations`` units."""
        n = len(self)
        levels = [0.0] * n
        for i in range(n - 1, -1, -1):
            succ_best = 0.0
            for s in self.successors(i):
                if levels[s] > succ_best:
                    succ_best = levels[s]
            levels[i] = durations[i] + succ_best
        return levels

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #
    def to_task_graph(self) -> TaskGraph:
        """Materialize a fresh legacy :class:`~repro.dag.task.TaskGraph`.

        Each call builds a new graph, so callers may mutate the result
        without corrupting a cached program.
        """
        graph = TaskGraph()
        for op in self.ops:
            graph.add_task(
                Task(
                    id=op.index,
                    kernel=op.kernel,
                    params=op.params,
                    reads=op.reads,
                    writes=op.writes,
                    weight=op.weight,
                    owner_tile=op.owner_tile,
                    step=op.step,
                )
            )
        for src, dst in self.edges():
            graph.add_edge(src, dst)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Program(n_ops={len(self)}, n_edges={self.n_edges}, key={self.key!r})"
