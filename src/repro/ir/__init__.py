"""Compiled op-stream Program IR.

The paper's whole pipeline — trace a tiled GE2BND/R-GE2BND algorithm into
a task DAG, schedule it, read off critical paths and makespans — used to be
rebuilt from scratch for every candidate a tuning sweep evaluated.  This
package separates *compilation* from *execution*, the way the superscalar
runtimes the paper targets (PaRSEC, StarPU) separate DAG construction from
scheduling:

* :class:`Program` — a compact, immutable op stream with a CSR-style
  dependency structure; compiled once per ``(algorithm, p, q, tree,
  n_cores, grid_rows)`` shape and replayed many times;
* :class:`DependencyAnalyzer` — the reusable superscalar RAW/WAR inference
  (previously buried in :mod:`repro.dag.tracer`);
* :class:`ProgramRecorder` — the :class:`~repro.algorithms.executor.KernelExecutor`
  that captures a driver run into a :class:`Program`;
* :func:`compile_program` / :func:`get_program` — the compiler front-end and
  the shared in-process :class:`ProgramCache`;
* :func:`replay` — interpret a :class:`Program` against any executor (the
  numeric executor, a second recorder, …), guaranteeing that numeric runs,
  critical-path analysis and runtime simulation all consume the same op
  stream.
"""

from repro.ir.program import (
    DependencyAnalyzer,
    Op,
    OpColumns,
    Program,
    analyze_coded_stream,
)
from repro.ir.recorder import ProgramRecorder
from repro.ir.compiler import (
    ALGORITHMS,
    ProgramCache,
    clear_program_cache,
    compile_program,
    get_program,
    program_cache_stats,
    program_key,
    tree_fingerprint,
)
from repro.ir.interpret import replay

__all__ = [
    "ALGORITHMS",
    "DependencyAnalyzer",
    "Op",
    "OpColumns",
    "Program",
    "analyze_coded_stream",
    "ProgramCache",
    "ProgramRecorder",
    "clear_program_cache",
    "compile_program",
    "get_program",
    "program_cache_stats",
    "program_key",
    "replay",
    "tree_fingerprint",
]
