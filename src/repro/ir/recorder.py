"""Capture a tiled-algorithm driver run into a :class:`Program`.

:class:`ProgramRecorder` implements the
:class:`~repro.algorithms.executor.KernelExecutor` interface: instead of
touching numbers it appends one :class:`~repro.ir.program.Op` per kernel
call, carrying the kernel's read/write sets (tile halves — the access-set
conventions the legacy :class:`repro.dag.tracer.TraceExecutor` pioneered).
The dependency edges are *not* inferred here; that is
:class:`~repro.ir.program.DependencyAnalyzer`'s job when the stream is
finalized into a :class:`~repro.ir.program.Program`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.algorithms.executor import KernelExecutor
from repro.dag.task import DataItem
from repro.ir.program import Op, Program
from repro.kernels.costs import KernelName, kernel_weight


def _upper(i: int, j: int) -> DataItem:
    return ("U", i, j)


def _lower(i: int, j: int) -> DataItem:
    return ("L", i, j)


def _whole(i: int, j: int) -> Tuple[DataItem, DataItem]:
    return (_upper(i, j), _lower(i, j))


class ProgramRecorder(KernelExecutor):
    """Executor that records the op stream instead of computing."""

    def __init__(self, p: int, q: int) -> None:
        if p < 1 or q < 1:
            raise ValueError(f"tile shape must be at least 1x1, got {p}x{q}")
        self._p = p
        self._q = q
        self.ops: List[Op] = []
        #: Panel step label (``QR(k)`` / ``LQ(k)``) stamped on recorded ops;
        #: the drivers update it as they go.
        self.current_step: str = ""

    @property
    def p(self) -> int:
        return self._p

    @property
    def q(self) -> int:
        return self._q

    def program(self, key: Optional[Tuple] = None) -> Program:
        """Finalize the recorded stream into an immutable :class:`Program`."""
        return Program.from_ops(self.ops, key=key)

    # ------------------------------------------------------------------ #
    # Op recording
    # ------------------------------------------------------------------ #
    def _record(
        self,
        kernel: KernelName,
        params: Tuple[int, ...],
        reads: Iterable[DataItem],
        writes: Iterable[DataItem],
        owner_tile: Tuple[int, int],
    ) -> None:
        self.ops.append(
            Op(
                index=len(self.ops),
                kernel=kernel,
                params=params,
                reads=frozenset(reads),
                writes=frozenset(writes),
                weight=kernel_weight(kernel),
                owner_tile=owner_tile,
                step=self.current_step,
            )
        )

    # ------------------------------------------------------------------ #
    # QR family
    # ------------------------------------------------------------------ #
    def geqrt(self, i: int, k: int) -> None:
        self._record(KernelName.GEQRT, (i, k), reads=(), writes=_whole(i, k), owner_tile=(i, k))

    def unmqr(self, i: int, k: int, j: int) -> None:
        self._record(
            KernelName.UNMQR,
            (i, k, j),
            reads=(_lower(i, k),),
            writes=_whole(i, j),
            owner_tile=(i, j),
        )

    def tsqrt(self, piv: int, i: int, k: int) -> None:
        self._record(
            KernelName.TSQRT,
            (piv, i, k),
            reads=(),
            writes=(_upper(piv, k),) + _whole(i, k),
            owner_tile=(i, k),
        )

    def tsmqr(self, piv: int, i: int, k: int, j: int) -> None:
        self._record(
            KernelName.TSMQR,
            (piv, i, k, j),
            reads=_whole(i, k),
            writes=_whole(piv, j) + _whole(i, j),
            owner_tile=(i, j),
        )

    def ttqrt(self, piv: int, i: int, k: int) -> None:
        # The TT reflectors are stored in the *upper* (triangular) part of the
        # killed tile; the lower part still holds the GEQRT reflectors, which
        # is why TTQRT does not conflict with the UNMQR updates of row i.
        self._record(
            KernelName.TTQRT,
            (piv, i, k),
            reads=(),
            writes=(_upper(piv, k), _upper(i, k)),
            owner_tile=(i, k),
        )

    def ttmqr(self, piv: int, i: int, k: int, j: int) -> None:
        self._record(
            KernelName.TTMQR,
            (piv, i, k, j),
            reads=(_upper(i, k),),
            writes=_whole(piv, j) + _whole(i, j),
            owner_tile=(i, j),
        )

    # ------------------------------------------------------------------ #
    # LQ family
    # ------------------------------------------------------------------ #
    def gelqt(self, k: int, j: int) -> None:
        self._record(KernelName.GELQT, (k, j), reads=(), writes=_whole(k, j), owner_tile=(k, j))

    def unmlq(self, k: int, j: int, i: int) -> None:
        self._record(
            KernelName.UNMLQ,
            (k, j, i),
            reads=(_upper(k, j),),
            writes=_whole(i, j),
            owner_tile=(i, j),
        )

    def tslqt(self, piv: int, j: int, k: int) -> None:
        self._record(
            KernelName.TSLQT,
            (piv, j, k),
            reads=(),
            writes=(_lower(k, piv),) + _whole(k, j),
            owner_tile=(k, j),
        )

    def tsmlq(self, piv: int, j: int, k: int, i: int) -> None:
        self._record(
            KernelName.TSMLQ,
            (piv, j, k, i),
            reads=_whole(k, j),
            writes=_whole(i, piv) + _whole(i, j),
            owner_tile=(i, j),
        )

    def ttlqt(self, piv: int, j: int, k: int) -> None:
        # Mirror of ttqrt: the TT reflectors live in the *lower* part of the
        # killed tile, leaving the GELQT reflectors (upper part) untouched.
        self._record(
            KernelName.TTLQT,
            (piv, j, k),
            reads=(),
            writes=(_lower(k, piv), _lower(k, j)),
            owner_tile=(k, j),
        )

    def ttmlq(self, piv: int, j: int, k: int, i: int) -> None:
        self._record(
            KernelName.TTMLQ,
            (piv, j, k, i),
            reads=(_lower(k, j),),
            writes=_whole(i, piv) + _whole(i, j),
            owner_tile=(i, j),
        )
