"""Capture a tiled-algorithm driver run into a :class:`Program`.

:class:`ProgramRecorder` implements the
:class:`~repro.algorithms.executor.KernelExecutor` interface: instead of
touching numbers it appends one row of packed *columns* per kernel call —
kernel code, tile-index params, integer-coded read/write sets (tile halves,
the access-set conventions the legacy :class:`repro.dag.tracer.TraceExecutor`
pioneered), owner tile and step label.  No :class:`~repro.ir.program.Op`
objects or frozensets are built while recording: a million-op driver run
costs a million small tuple appends, and the object form materializes
lazily only if a legacy consumer asks for it.

The dependency edges are *not* inferred here; that is
:func:`~repro.ir.program.analyze_coded_stream`'s job (the integer-coded
fast path of :class:`~repro.ir.program.DependencyAnalyzer`) when the
stream is finalized into a :class:`~repro.ir.program.Program`.

Data items are coded as dense integers: the upper half of tile ``(i, j)``
is ``i * q + j`` and the lower half is ``p * q + i * q + j``.  Integer
items index flat tables in the analyzer instead of hashing tuples, which
is where most of the compile-time win of the structure-of-arrays path
comes from.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.algorithms.executor import KernelExecutor
from repro.ir.program import Op, OpColumns, Program, analyze_coded_stream
from repro.kernels.costs import KERNEL_CODES, KernelName

_GEQRT = KERNEL_CODES[KernelName.GEQRT]
_UNMQR = KERNEL_CODES[KernelName.UNMQR]
_TSQRT = KERNEL_CODES[KernelName.TSQRT]
_TSMQR = KERNEL_CODES[KernelName.TSMQR]
_TTQRT = KERNEL_CODES[KernelName.TTQRT]
_TTMQR = KERNEL_CODES[KernelName.TTMQR]
_GELQT = KERNEL_CODES[KernelName.GELQT]
_UNMLQ = KERNEL_CODES[KernelName.UNMLQ]
_TSLQT = KERNEL_CODES[KernelName.TSLQT]
_TSMLQ = KERNEL_CODES[KernelName.TSMLQ]
_TTLQT = KERNEL_CODES[KernelName.TTLQT]
_TTMLQ = KERNEL_CODES[KernelName.TTMLQ]


class ProgramRecorder(KernelExecutor):
    """Executor that records packed op columns instead of computing.

    Each kernel method appends one ``(kernel code, params, coded reads,
    coded writes, owner row, owner col, step)`` row; :meth:`program`
    finalizes the stream (dependency analysis + CSR build) into an
    immutable :class:`~repro.ir.program.Program`.  The :attr:`ops`
    property materializes legacy :class:`~repro.ir.program.Op` objects on
    demand for backward-compatible consumers.
    """

    def __init__(self, p: int, q: int) -> None:
        if p < 1 or q < 1:
            raise ValueError(f"tile shape must be at least 1x1, got {p}x{q}")
        self._p = p
        self._q = q
        self._pq = p * q
        #: One row per recorded op (see class docstring for the layout).
        self._rows: List[Tuple] = []
        self._ops_cache: Optional[List[Op]] = None
        self._ops_count = -1
        #: Panel step label (``QR(k)`` / ``LQ(k)``) stamped on recorded ops;
        #: the drivers update it as they go.
        self.current_step: str = ""

    @property
    def p(self) -> int:
        return self._p

    @property
    def q(self) -> int:
        return self._q

    def __len__(self) -> int:
        return len(self._rows)

    def columns(self) -> OpColumns:
        """The stream recorded so far, in structure-of-arrays form."""
        if self._rows:
            kernels, params, reads, writes, rows, cols, steps = zip(*self._rows)
        else:
            kernels = params = reads = writes = rows = cols = steps = ()
        return OpColumns(
            self._q, self._pq, kernels, params, reads, writes, rows, cols,
            steps,
        )

    @property
    def ops(self) -> List[Op]:
        """Legacy view: the stream as :class:`Op` objects (built on demand)."""
        if self._ops_cache is None or self._ops_count != len(self._rows):
            cols = self.columns()
            self._ops_cache = [cols.op(i) for i in range(len(cols))]
            self._ops_count = len(self._rows)
        return self._ops_cache

    def program(self, key: Optional[Tuple] = None) -> Program:
        """Finalize the recorded stream into an immutable :class:`Program`."""
        from contextlib import nullcontext

        from repro.obs.tracer import current_tracer

        tracer = current_tracer()
        with tracer.phase("dep-analysis") if tracer is not None else nullcontext():
            cols = self.columns()
            pred_lists, levels = analyze_coded_stream(
                cols.reads, cols.writes, 2 * self._pq
            )
            return Program.from_columns(cols, pred_lists, key=key, levels=levels)

    # ------------------------------------------------------------------ #
    # QR family.  Item codes: upper(i, j) = i*q + j, lower(i, j) = pq + i*q + j.
    # ------------------------------------------------------------------ #
    def geqrt(self, i: int, k: int) -> None:
        u = i * self._q + k
        self._rows.append(
            (_GEQRT, (i, k), (), (u, self._pq + u), i, k, self.current_step)
        )

    def unmqr(self, i: int, k: int, j: int) -> None:
        q = self._q
        pq = self._pq
        u = i * q + j
        self._rows.append(
            (_UNMQR, (i, k, j), (pq + i * q + k,), (u, pq + u), i, j,
             self.current_step)
        )

    def tsqrt(self, piv: int, i: int, k: int) -> None:
        q = self._q
        pq = self._pq
        u = i * q + k
        self._rows.append(
            (_TSQRT, (piv, i, k), (), (piv * q + k, u, pq + u), i, k,
             self.current_step)
        )

    def tsmqr(self, piv: int, i: int, k: int, j: int) -> None:
        q = self._q
        pq = self._pq
        uk = i * q + k
        up = piv * q + j
        ui = i * q + j
        self._rows.append(
            (_TSMQR, (piv, i, k, j), (uk, pq + uk),
             (up, pq + up, ui, pq + ui), i, j, self.current_step)
        )

    def ttqrt(self, piv: int, i: int, k: int) -> None:
        # The TT reflectors are stored in the *upper* (triangular) part of the
        # killed tile; the lower part still holds the GEQRT reflectors, which
        # is why TTQRT does not conflict with the UNMQR updates of row i.
        q = self._q
        self._rows.append(
            (_TTQRT, (piv, i, k), (), (piv * q + k, i * q + k), i, k,
             self.current_step)
        )

    def ttmqr(self, piv: int, i: int, k: int, j: int) -> None:
        q = self._q
        pq = self._pq
        up = piv * q + j
        ui = i * q + j
        self._rows.append(
            (_TTMQR, (piv, i, k, j), (i * q + k,),
             (up, pq + up, ui, pq + ui), i, j, self.current_step)
        )

    # ------------------------------------------------------------------ #
    # LQ family
    # ------------------------------------------------------------------ #
    def gelqt(self, k: int, j: int) -> None:
        u = k * self._q + j
        self._rows.append(
            (_GELQT, (k, j), (), (u, self._pq + u), k, j, self.current_step)
        )

    def unmlq(self, k: int, j: int, i: int) -> None:
        q = self._q
        pq = self._pq
        u = i * q + j
        self._rows.append(
            (_UNMLQ, (k, j, i), (k * q + j,), (u, pq + u), i, j,
             self.current_step)
        )

    def tslqt(self, piv: int, j: int, k: int) -> None:
        q = self._q
        pq = self._pq
        u = k * q + j
        self._rows.append(
            (_TSLQT, (piv, j, k), (), (pq + k * q + piv, u, pq + u), k, j,
             self.current_step)
        )

    def tsmlq(self, piv: int, j: int, k: int, i: int) -> None:
        q = self._q
        pq = self._pq
        uk = k * q + j
        up = i * q + piv
        ui = i * q + j
        self._rows.append(
            (_TSMLQ, (piv, j, k, i), (uk, pq + uk),
             (up, pq + up, ui, pq + ui), i, j, self.current_step)
        )

    def ttlqt(self, piv: int, j: int, k: int) -> None:
        # Mirror of ttqrt: the TT reflectors live in the *lower* part of the
        # killed tile, leaving the GELQT reflectors (upper part) untouched.
        q = self._q
        pq = self._pq
        self._rows.append(
            (_TTLQT, (piv, j, k), (), (pq + k * q + piv, pq + k * q + j),
             k, j, self.current_step)
        )

    def ttmlq(self, piv: int, j: int, k: int, i: int) -> None:
        q = self._q
        pq = self._pq
        up = i * q + piv
        ui = i * q + j
        self._rows.append(
            (_TTMLQ, (piv, j, k, i), (pq + k * q + j,),
             (up, pq + up, ui, pq + ui), i, j, self.current_step)
        )
